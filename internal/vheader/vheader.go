// Package vheader implements Oak's per-value headers (§3.3): a one-word
// read–write spinlock with an embedded deleted bit, used to make
// v.put, v.compute, v.remove and buffer reads atomic with respect to one
// another.
//
// In the paper the header occupies the first bytes of each value buffer
// and is manipulated with Unsafe atomics; headers are never reclaimed by
// the default memory manager, which both simplifies reclamation and rules
// out ABA on the remove path (§4.4). Here headers live in an append-only
// segmented table of uint64 words: the same lifetime discipline (a header
// index is never reused), the same one-word state machine, but with
// naturally aligned atomics and no unsafe. Each value buffer records its
// header index in its first 8 bytes, preserving the paper's "header at
// the start of the value" addressing through one extra hop.
//
// Each header consists of three words. The first is the lock word:
//
//	bit 63    deleted
//	bit 62    writer locked
//	bits 0-61 reader count
//
// The second is the value's current data reference (a packed arena.Ref).
// The third is the MVCC version word — the write version stamped by the
// last mutation plus batch-state flags, packed by internal/core (this
// package only stores and loads it).
// Keeping the data reference inside the header — readable only under the
// read lock, replaced only under the write lock — is what makes value
// resizing (§2.2: compute "extends the value's memory allocation if its
// code so requires") linearizable: a resize moves the bytes and swaps the
// data word without changing the value's identity (its header index), so
// chunk entries, rebalancers, and finalizeRemove's ABA argument all keep
// working unchanged.
package vheader

import (
	"runtime"
	"sync/atomic"
)

const (
	deletedBit = uint64(1) << 63
	writerBit  = uint64(1) << 62
	readerMask = writerBit - 1
)

const (
	segmentBits = 16
	segmentSize = 1 << segmentBits // headers per segment
	maxSegments = 1 << 14          // ~1B headers per table
)

type segment [3 * segmentSize]atomic.Uint64

// Table is an append-only table of value headers. Index 0 is reserved so
// that "no header" can be expressed as 0 (the paper's ⊥ value reference).
type Table struct {
	segments [maxSegments]atomic.Pointer[segment]
	next     atomic.Uint64
}

// NewTable creates an empty header table.
func NewTable() *Table {
	t := &Table{}
	t.next.Store(1) // reserve index 0
	return t
}

// Alloc returns a fresh header index in the live, unlocked state with a
// zero data reference. Headers are never reused, mirroring the paper's
// default reclamation policy ("refrains from reclaiming headers"), which
// makes the remove path ABA-free.
func (t *Table) Alloc() uint64 {
	idx := t.next.Add(1) - 1
	seg := idx >> segmentBits
	if t.segments[seg].Load() == nil {
		t.segments[seg].CompareAndSwap(nil, new(segment))
	}
	// Fresh segments are zeroed, so the header is already live/unlocked.
	return idx
}

// Count returns the number of headers allocated so far.
func (t *Table) Count() uint64 { return t.next.Load() - 1 }

func (t *Table) word(idx uint64) *atomic.Uint64 {
	return &t.segments[idx>>segmentBits].Load()[(idx&(segmentSize-1))*3]
}

func (t *Table) dataWord(idx uint64) *atomic.Uint64 {
	return &t.segments[idx>>segmentBits].Load()[(idx&(segmentSize-1))*3+1]
}

func (t *Table) verWord(idx uint64) *atomic.Uint64 {
	return &t.segments[idx>>segmentBits].Load()[(idx&(segmentSize-1))*3+2]
}

// LoadData returns the header's current data reference word. Callers that
// need a stable snapshot must hold the read or write lock.
func (t *Table) LoadData(idx uint64) uint64 { return t.dataWord(idx).Load() }

// StoreData replaces the header's data reference word. Callers must hold
// the write lock, except when initializing a freshly allocated header
// that is not yet published.
func (t *Table) StoreData(idx uint64, ref uint64) { t.dataWord(idx).Store(ref) }

// LoadVersion returns the header's version word. The word is opaque to
// this package: the MVCC layer packs a monotonically increasing write
// version plus batch-state flag bits into it. Writers store it under
// the write lock; readers load it under the read lock (or tolerate the
// race on unlocked probes — the word is a single atomic).
func (t *Table) LoadVersion(idx uint64) uint64 { return t.verWord(idx).Load() }

// StoreVersion replaces the header's version word. Callers must hold
// the write lock, except when initializing a freshly allocated header
// that is not yet published.
func (t *Table) StoreVersion(idx uint64, v uint64) { t.verWord(idx).Store(v) }

// IsDeleted reports whether the header's deleted bit is set.
func (t *Table) IsDeleted(idx uint64) bool {
	return t.word(idx).Load()&deletedBit != 0
}

// TryReadLock acquires the header's read lock. It returns false iff the
// value is deleted; it spins while a writer holds the lock.
func (t *Table) TryReadLock(idx uint64) bool {
	w := t.word(idx)
	for spins := 0; ; spins++ {
		h := w.Load()
		if h&deletedBit != 0 {
			return false
		}
		if h&writerBit != 0 {
			backoff(spins)
			continue
		}
		if w.CompareAndSwap(h, h+1) {
			return true
		}
	}
}

// ReadUnlock releases a read lock previously acquired with TryReadLock.
func (t *Table) ReadUnlock(idx uint64) {
	t.word(idx).Add(^uint64(0)) // -1
}

// TryWriteLock acquires the header's write lock. It returns false iff the
// value is deleted; it spins while readers or another writer are present.
func (t *Table) TryWriteLock(idx uint64) bool {
	w := t.word(idx)
	for spins := 0; ; spins++ {
		h := w.Load()
		if h&deletedBit != 0 {
			return false
		}
		if h != 0 { // readers present or writer locked
			backoff(spins)
			continue
		}
		if w.CompareAndSwap(0, writerBit) {
			return true
		}
	}
}

// WriteUnlock releases the write lock.
func (t *Table) WriteUnlock(idx uint64) {
	t.word(idx).Store(0)
}

// TryDelete atomically transitions the header to deleted. It acquires the
// write lock internally, so it waits out concurrent readers and writers.
// It returns false iff the value was already deleted. This is the
// linearization point of a successful remove (§4.5).
func (t *Table) TryDelete(idx uint64) bool {
	if !t.TryWriteLock(idx) {
		return false
	}
	t.word(idx).Store(deletedBit)
	return true
}

// DeleteLocked transitions a write-locked header to deleted, releasing
// the lock. It lets a remover privatize the value's data reference under
// the lock before the deleted bit becomes visible — required under
// header reclamation, where a concurrent insert may Release (and
// recycle) the header as soon as it observes the deleted bit.
func (t *Table) DeleteLocked(idx uint64) {
	t.word(idx).Store(deletedBit)
}

// backoff yields the processor with increasing insistence.
func backoff(spins int) {
	if spins > 16 {
		runtime.Gosched()
	}
}
