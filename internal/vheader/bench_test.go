package vheader

import "testing"

func BenchmarkReadLockUnlock(b *testing.B) {
	t := NewTable()
	h := t.Alloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !t.TryReadLock(h) {
			b.Fatal("lock failed")
		}
		t.ReadUnlock(h)
	}
}

func BenchmarkWriteLockUnlock(b *testing.B) {
	t := NewTable()
	h := t.Alloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !t.TryWriteLock(h) {
			b.Fatal("lock failed")
		}
		t.WriteUnlock(h)
	}
}

func BenchmarkAllocDefault(b *testing.B) {
	t := NewTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Alloc()
	}
}

func BenchmarkAllocReclaimChurn(b *testing.B) {
	t := NewReclaimingTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := t.Alloc()
		t.TryDelete(h)
		t.Release(h)
	}
	b.ReportMetric(float64(t.Count()), "slots")
}

func BenchmarkReclaimReadLock(b *testing.B) {
	t := NewReclaimingTable()
	h := t.Alloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !t.TryReadLock(h) {
			b.Fatal("lock failed")
		}
		t.ReadUnlock(h)
	}
}

func BenchmarkConcurrentReadLock(b *testing.B) {
	t := NewTable()
	h := t.Alloc()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if t.TryReadLock(h) {
				t.ReadUnlock(h)
			}
		}
	})
}
