package vheader

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestAllocUniqueMonotone(t *testing.T) {
	tb := NewTable()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		h := tb.Alloc()
		if h <= prev {
			t.Fatalf("handle %d not greater than previous %d", h, prev)
		}
		prev = h
	}
	if tb.Count() != 1000 {
		t.Fatalf("Count = %d", tb.Count())
	}
}

func TestAllocZeroReserved(t *testing.T) {
	tb := NewTable()
	if h := tb.Alloc(); h == 0 {
		t.Fatal("handle 0 must be reserved for ⊥")
	}
}

func TestReadWriteLockBasics(t *testing.T) {
	tb := NewTable()
	h := tb.Alloc()
	if !tb.TryReadLock(h) {
		t.Fatal("fresh header must be readable")
	}
	if !tb.TryReadLock(h) {
		t.Fatal("read lock must be shared")
	}
	tb.ReadUnlock(h)
	tb.ReadUnlock(h)
	if !tb.TryWriteLock(h) {
		t.Fatal("write lock after full unlock")
	}
	tb.WriteUnlock(h)
}

func TestDeleteSemantics(t *testing.T) {
	tb := NewTable()
	h := tb.Alloc()
	if tb.IsDeleted(h) {
		t.Fatal("fresh header deleted")
	}
	if !tb.TryDelete(h) {
		t.Fatal("first delete must succeed")
	}
	if !tb.IsDeleted(h) {
		t.Fatal("deleted bit not set")
	}
	if tb.TryDelete(h) {
		t.Fatal("second delete must fail")
	}
	if tb.TryReadLock(h) {
		t.Fatal("read lock on deleted header must fail")
	}
	if tb.TryWriteLock(h) {
		t.Fatal("write lock on deleted header must fail")
	}
}

func TestDataWord(t *testing.T) {
	tb := NewTable()
	h := tb.Alloc()
	if tb.LoadData(h) != 0 {
		t.Fatal("fresh data word must be zero")
	}
	tb.StoreData(h, 0xDEADBEEF)
	if tb.LoadData(h) != 0xDEADBEEF {
		t.Fatal("data word round trip failed")
	}
	h2 := tb.Alloc()
	if tb.LoadData(h2) != 0 {
		t.Fatal("neighbouring header data leaked")
	}
}

func TestSegmentBoundary(t *testing.T) {
	tb := NewTable()
	var last uint64
	for i := 0; i < segmentSize+10; i++ {
		last = tb.Alloc()
		tb.StoreData(last, last*3)
	}
	// Spot-check across the segment boundary.
	for h := last - 20; h <= last; h++ {
		if tb.LoadData(h) != h*3 {
			t.Fatalf("data at %d corrupted", h)
		}
	}
}

// TestWriterMutualExclusion: concurrent writers incrementing a plain
// counter under the write lock must not lose updates.
func TestWriterMutualExclusion(t *testing.T) {
	tb := NewTable()
	h := tb.Alloc()
	var counter int64 // plain, protected by the header's write lock
	const goroutines = 8
	const rounds = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if !tb.TryWriteLock(h) {
					t.Error("write lock failed on live header")
					return
				}
				counter++
				tb.WriteUnlock(h)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*rounds {
		t.Fatalf("lost updates: %d != %d", counter, goroutines*rounds)
	}
}

// TestReadersExcludeWriter: while any reader holds the lock, a writer
// must not enter. The writer flips a flag that readers check.
func TestReadersExcludeWriter(t *testing.T) {
	tb := NewTable()
	h := tb.Alloc()
	var inWrite atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tb.TryReadLock(h) {
					if inWrite.Load() {
						violations.Add(1)
					}
					tb.ReadUnlock(h)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if !tb.TryWriteLock(h) {
			t.Fatal("write lock failed")
		}
		inWrite.Store(true)
		inWrite.Store(false)
		tb.WriteUnlock(h)
	}
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d reader-during-writer violations", violations.Load())
	}
}

// TestConcurrentDeleteSingleWinner: exactly one of many racing deletes
// succeeds.
func TestConcurrentDeleteSingleWinner(t *testing.T) {
	for round := 0; round < 100; round++ {
		tb := NewTable()
		h := tb.Alloc()
		var wins atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if tb.TryDelete(h) {
					wins.Add(1)
				}
			}()
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("round %d: %d delete winners", round, wins.Load())
		}
	}
}

// Property: any interleaving of balanced lock/unlock sequences leaves the
// header in the unlocked state.
func TestLockStateProperty(t *testing.T) {
	f := func(ops []bool) bool {
		tb := NewTable()
		h := tb.Alloc()
		for _, isWrite := range ops {
			if isWrite {
				if !tb.TryWriteLock(h) {
					return false
				}
				tb.WriteUnlock(h)
			} else {
				if !tb.TryReadLock(h) {
					return false
				}
				tb.ReadUnlock(h)
			}
		}
		// After balanced use, both lock modes must be available.
		if !tb.TryWriteLock(h) {
			return false
		}
		tb.WriteUnlock(h)
		return !tb.IsDeleted(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
