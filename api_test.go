package oakmap

import "testing"

// This file pins the two API surfaces of Table 1 at compile time: if a
// method's shape drifts, these assignments stop compiling. It mirrors
// the paper's side-by-side of ZeroCopyConcurrentNavigableMap and the
// legacy ConcurrentNavigableMap.

type tk = uint64
type tv = string

// Legacy surface (right column of Table 1, Go-ified: errors instead of
// unchecked exceptions, (value, ok) instead of nullable returns).
var (
	_ func(*Map[tk, tv], tk) (tv, bool)                 = (*Map[tk, tv]).Get
	_ func(*Map[tk, tv], tk, tv) (tv, bool, error)      = (*Map[tk, tv]).Put
	_ func(*Map[tk, tv], tk, tv) (tv, bool, error)      = (*Map[tk, tv]).PutIfAbsent
	_ func(*Map[tk, tv], tk) (tv, bool, error)          = (*Map[tk, tv]).Remove
	_ func(*Map[tk, tv], tk, func(tv) tv) (bool, error) = (*Map[tk, tv]).ComputeIfPresent
	_ func(*Map[tk, tv], tk, tv, func(tv) tv) error     = (*Map[tk, tv]).Merge
	_ func(*Map[tk, tv], *tk, *tk, func(tk, tv) bool)   = (*Map[tk, tv]).Range
	_ func(*Map[tk, tv], *tk, *tk, func(tk, tv) bool)   = (*Map[tk, tv]).RangeDescending
	_ func(*Map[tk, tv], *tk, *tk) SubMap[tk, tv]       = (*Map[tk, tv]).SubMap
	_ func(*Map[tk, tv], tk) SubMap[tk, tv]             = (*Map[tk, tv]).HeadMap
	_ func(*Map[tk, tv], tk) SubMap[tk, tv]             = (*Map[tk, tv]).TailMap
	_ func(*Map[tk, tv]) (tk, bool)                     = (*Map[tk, tv]).FirstKey
	_ func(*Map[tk, tv]) (tk, bool)                     = (*Map[tk, tv]).LastKey
	_ func(*Map[tk, tv], tk) (tk, bool)                 = (*Map[tk, tv]).FloorKey
	_ func(*Map[tk, tv], tk) (tk, bool)                 = (*Map[tk, tv]).CeilingKey
	_ func(*Map[tk, tv], tk) (tk, bool)                 = (*Map[tk, tv]).LowerKey
	_ func(*Map[tk, tv], tk) (tk, bool)                 = (*Map[tk, tv]).HigherKey
)

// Zero-copy surface (left column of Table 1): queries return buffer
// views; updates do not return old values; two update-in-place forms.
var (
	_ func(ZeroCopyMap[tk, tv], tk) *OakRBuffer                           = ZeroCopyMap[tk, tv].Get
	_ func(ZeroCopyMap[tk, tv], tk, tv) error                             = ZeroCopyMap[tk, tv].Put
	_ func(ZeroCopyMap[tk, tv], tk) error                                 = ZeroCopyMap[tk, tv].Remove
	_ func(ZeroCopyMap[tk, tv], tk, tv) (bool, error)                     = ZeroCopyMap[tk, tv].PutIfAbsent
	_ func(ZeroCopyMap[tk, tv], tk, func(OakWBuffer) error) (bool, error) = ZeroCopyMap[tk, tv].ComputeIfPresent
	_ func(ZeroCopyMap[tk, tv], tk, tv, func(OakWBuffer) error) error     = ZeroCopyMap[tk, tv].PutIfAbsentComputeIfPresent
	// keySet()/valueSet()/entrySet() analogues plus the stream variants.
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer) bool)              = ZeroCopyMap[tk, tv].Keys
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer) bool)              = ZeroCopyMap[tk, tv].Values
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer) bool)              = ZeroCopyMap[tk, tv].KeysStream
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer) bool)              = ZeroCopyMap[tk, tv].ValuesStream
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer, *OakRBuffer) bool) = ZeroCopyMap[tk, tv].Ascend
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer, *OakRBuffer) bool) = ZeroCopyMap[tk, tv].Descend
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer, *OakRBuffer) bool) = ZeroCopyMap[tk, tv].AscendStream
	_ func(ZeroCopyMap[tk, tv], *tk, *tk, func(*OakRBuffer, *OakRBuffer) bool) = ZeroCopyMap[tk, tv].DescendStream
)

// TestUpdatesDoNotReturnOldValues documents the ZC design decision from
// Table 1's caption behaviourally: a ZC put/remove gives no way to
// observe the previous value, while the legacy calls do.
func TestUpdatesDoNotReturnOldValues(t *testing.T) {
	m := New[uint64, string](Uint64Serializer{}, StringSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	if err := zc.Put(1, "a"); err != nil { // void put
		t.Fatal(err)
	}
	prev, replaced, err := m.Put(1, "b") // legacy put returns old
	if err != nil || !replaced || prev != "a" {
		t.Fatalf("legacy Put = %q, %v, %v", prev, replaced, err)
	}
	if err := zc.Remove(1); err != nil { // void remove
		t.Fatal(err)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("removed key still present")
	}
}

// TestStreamViewsAreReused documents the non-standard stream semantics
// the paper calls out: the same view object is handed to every step, so
// retaining it observes later entries' content.
func TestStreamViewsAreReused(t *testing.T) {
	m := New[uint64, string](Uint64Serializer{}, StringSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	for i := uint64(0); i < 10; i++ {
		zc.Put(i, "x")
	}
	var views []*OakRBuffer
	zc.AscendStream(nil, nil, func(k, v *OakRBuffer) bool {
		views = append(views, k)
		return true
	})
	for i := 1; i < len(views); i++ {
		if views[i] != views[0] {
			t.Fatal("stream scan must reuse one key view")
		}
	}
	// And the Set-style scan hands out distinct views.
	views = views[:0]
	zc.Ascend(nil, nil, func(k, v *OakRBuffer) bool {
		views = append(views, k)
		return true
	})
	seen := map[*OakRBuffer]bool{}
	for _, v := range views {
		if seen[v] {
			t.Fatal("Set-style scan must create fresh views")
		}
		seen[v] = true
	}
}
