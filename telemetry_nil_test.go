package oakmap

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTelemetryNilReceiver pins the facade's contract: every exported
// method of *Telemetry is callable on a nil receiver and degrades to its
// empty form. Tools that thread an optional scope (oak-stress,
// oak-server) call these unconditionally in their reporting paths, so a
// method that panics on nil is a regression even if it "works" when
// telemetry is attached.
func TestTelemetryNilReceiver(t *testing.T) {
	var tel *Telemetry

	if evs := tel.DumpEvents(); evs != nil {
		t.Errorf("DumpEvents on nil scope: got %d events, want nil", len(evs))
	}
	if n := tel.EventCount(); n != 0 {
		t.Errorf("EventCount on nil scope: got %d, want 0", n)
	}
	if s := tel.Summary(); s != "" {
		t.Errorf("Summary on nil scope: got %q, want empty", s)
	}
	if ops := tel.OpLatencies(); ops != nil {
		t.Errorf("OpLatencies on nil scope: got %d rows, want nil", len(ops))
	}

	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Errorf("WriteMetrics on nil scope: %v", err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Errorf("WriteMetrics on nil scope should say disabled, got %q", sb.String())
	}

	h := tel.MetricsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(body), "disabled") {
		t.Errorf("nil-scope /metrics should say disabled, got %q", body)
	}

	// Registration and publication are no-ops on a nil scope.
	tel.RegisterGauge("oak_test_nil_gauge", false, func() float64 { return 1 })
	tel.PublishExpvar("oak_test_nil_scope")
}

// TestShardedFragmentationGauge pins the sharded gauge set's parity
// with the plain map's: oak_arena_fragmentation_ratio must be exported
// for a sharded map too (it was dropped from the sharded registration
// once), as the live-bytes-weighted rollup across shards.
func TestShardedFragmentationGauge(t *testing.T) {
	tel := NewTelemetry(nil)
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{Shards: 3, ChunkCapacity: 32, BlockSize: 1 << 20, Telemetry: tel})
	defer m.Close()
	zc := m.ZC()
	for i := uint64(0); i < 200; i++ {
		if err := zc.Put(i, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i += 2 {
		if err := zc.Remove(i); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "oak_arena_fragmentation_ratio") {
		t.Fatalf("sharded map exposition lacks oak_arena_fragmentation_ratio:\n%s", out)
	}
	// The rollup is a ratio: parse-free sanity that the value line is not
	// NaN/Inf (weighting by live bytes must fall back cleanly).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "oak_arena_fragmentation_ratio") {
			if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
				t.Fatalf("fragmentation rollup not finite: %q", line)
			}
		}
	}
}

// TestTelemetryRegisterGauge covers the live side of the facade's gauge
// hook: a registered read-out (plain and labeled/counter) appears in the
// exposition.
func TestTelemetryRegisterGauge(t *testing.T) {
	tel := NewTelemetry(nil)
	tel.RegisterGauge("oak_test_plain", false, func() float64 { return 4.5 })
	tel.RegisterGauge(`oak_test_labeled_total{kind="a"}`, true, func() float64 { return 7 })

	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "oak_test_plain 4.5") {
		t.Errorf("plain gauge missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, `oak_test_labeled_total{kind="a"} 7`) {
		t.Errorf("labeled counter missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE oak_test_labeled_total counter") {
		t.Errorf("counter TYPE line missing:\n%s", out)
	}
}
