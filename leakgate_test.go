package oakmap

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestLeakGateChurnDrains is the reclamation leak gate: after a
// delete-heavy concurrent churn followed by removing every key and a
// quiesce, the map must hold (almost) no off-heap bytes. With the
// default policy (key reclamation on) KeyLeakBytes must be exactly
// zero and the limbo must drain completely; LiveBytes may retain a
// small tail — dead keys sit in chunk metadata until a rebalance or
// merge visits their chunk, and the head chunk never merges away — but
// that tail is bounded by a few chunks' worth of keys, not by the
// churn volume.
func TestLeakGateChurnDrains(t *testing.T) {
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 64, BlockSize: 1 << 20, ReclaimHeaders: true})
	defer m.Close()
	zc := m.ZC()

	const (
		keySpace = 4096
		workers  = 4
		opsPer   = 50_000
	)
	val := make([]byte, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xC0FFEE))
			v := make([]byte, len(val))
			for i := 0; i < opsPer; i++ {
				k := rng.Uint64N(keySpace)
				switch op := rng.Uint64N(100); {
				case op < 45:
					zc.Put(k, v)
				case op < 90:
					zc.Remove(k)
				default:
					if buf := zc.Get(k); buf != nil {
						buf.Len()
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	for k := uint64(0); k < keySpace; k++ {
		zc.Remove(k)
	}
	// StatsConsistent quiesces and re-reads until the snapshot is stable,
	// so the cross-field assertions below (Len vs LimboItems vs
	// LiveBytes) compare values from one moment rather than a torn read.
	s, ok := m.StatsConsistent()
	if !ok {
		t.Fatal("StatsConsistent failed: limbo did not drain with no readers pinned")
	}
	t.Logf("after drain: len=%d live=%d keyLeak=%d limboItems=%d limboBytes=%d chunks=%d footprint=%d",
		s.Len, s.LiveBytes, s.KeyLeakBytes, s.LimboItems, s.LimboBytes, s.Chunks, s.Footprint)
	if s.Len != 0 {
		t.Fatalf("Len = %d after removing every key", s.Len)
	}
	if s.KeyLeakBytes != 0 {
		t.Fatalf("KeyLeakBytes = %d with default key reclamation", s.KeyLeakBytes)
	}
	if s.LimboItems != 0 || s.LimboBytes != 0 {
		t.Fatalf("limbo not drained: items=%d bytes=%d", s.LimboItems, s.LimboBytes)
	}
	// Residual live bytes: uncollected dead keys in the surviving
	// chunks. Bound it by a handful of chunks' worth of 8-byte keys
	// (ChunkCapacity 64) — generous, but orders of magnitude below the
	// ~1.6 MB of key space the churn cycled through.
	const liveBound = 16 * 1024
	if s.LiveBytes > liveBound {
		t.Fatalf("LiveBytes = %d after full drain (bound %d): reclamation leak", s.LiveBytes, liveBound)
	}
}
