package oakmap

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestLeakGateChurnDrains is the reclamation leak gate: after a
// delete-heavy concurrent churn followed by removing every key and a
// quiesce, the map must hold (almost) no off-heap bytes. With the
// default policy (key reclamation on) KeyLeakBytes must be exactly
// zero and the limbo must drain completely; LiveBytes may retain a
// small tail — dead keys sit in chunk metadata until a rebalance or
// merge visits their chunk, and the head chunk never merges away — but
// that tail is bounded by a few chunks' worth of keys, not by the
// churn volume.
func TestLeakGateChurnDrains(t *testing.T) {
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 64, BlockSize: 1 << 20, ReclaimHeaders: true})
	defer m.Close()
	zc := m.ZC()

	const (
		keySpace = 4096
		workers  = 4
		opsPer   = 50_000
	)
	val := make([]byte, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xC0FFEE))
			v := make([]byte, len(val))
			for i := 0; i < opsPer; i++ {
				k := rng.Uint64N(keySpace)
				switch op := rng.Uint64N(100); {
				case op < 45:
					zc.Put(k, v)
				case op < 90:
					zc.Remove(k)
				default:
					if buf := zc.Get(k); buf != nil {
						buf.Len()
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	for k := uint64(0); k < keySpace; k++ {
		zc.Remove(k)
	}
	// StatsConsistent quiesces and re-reads until the snapshot is stable,
	// so the cross-field assertions below (Len vs LimboItems vs
	// LiveBytes) compare values from one moment rather than a torn read.
	s, ok := m.StatsConsistent()
	if !ok {
		t.Fatal("StatsConsistent failed: limbo did not drain with no readers pinned")
	}
	t.Logf("after drain: len=%d live=%d keyLeak=%d limboItems=%d limboBytes=%d chunks=%d footprint=%d",
		s.Len, s.LiveBytes, s.KeyLeakBytes, s.LimboItems, s.LimboBytes, s.Chunks, s.Footprint)
	if s.Len != 0 {
		t.Fatalf("Len = %d after removing every key", s.Len)
	}
	if s.KeyLeakBytes != 0 {
		t.Fatalf("KeyLeakBytes = %d with default key reclamation", s.KeyLeakBytes)
	}
	if s.LimboItems != 0 || s.LimboBytes != 0 {
		t.Fatalf("limbo not drained: items=%d bytes=%d", s.LimboItems, s.LimboBytes)
	}
	// Residual live bytes: uncollected dead keys in the surviving
	// chunks. Bound it by a handful of chunks' worth of 8-byte keys
	// (ChunkCapacity 64) — generous, but orders of magnitude below the
	// ~1.6 MB of key space the churn cycled through.
	const liveBound = 16 * 1024
	if s.LiveBytes > liveBound {
		t.Fatalf("LiveBytes = %d after full drain (bound %d): reclamation leak", s.LiveBytes, liveBound)
	}
}

// TestLeakGateSnapshotRetainedDrains is the MVCC arm of the leak gate:
// delete-heavy churn under a rolling window of open snapshots forces
// superseded spans into the retained-version store; once the last
// snapshot closes, that store must drain to EXACTLY zero — retained
// bytes, spans, open count and horizon lag — on both backends. A
// retained span that survives its last observer is the MVCC layer's
// version of a limbo leak, invisible to LiveBytes because the span is
// no longer reachable from the structure.
func TestLeakGateSnapshotRetainedDrains(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(map[int]string{0: "plain", 4: "sharded"}[shards], func(t *testing.T) {
			m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
				&Options{ChunkCapacity: 64, BlockSize: 1 << 20, ReclaimHeaders: true, Shards: shards})
			defer m.Close()
			zc := m.ZC()

			const keySpace = 1024
			val := make([]byte, 64)
			for k := uint64(0); k < keySpace; k++ {
				zc.Put(k, val)
			}

			// Rolling snapshot window: up to 3 snapshots open at once, so
			// the churn below always has an observer to retain for.
			var open []*Snapshot[uint64, []byte]
			rng := rand.New(rand.NewPCG(11, 0x5EED))
			for round := 0; round < 24; round++ {
				open = append(open, m.Snapshot())
				if len(open) > 3 {
					open[0].Close()
					open = open[1:]
				}
				for i := 0; i < 2_000; i++ {
					k := rng.Uint64N(keySpace)
					if rng.Uint64N(100) < 40 {
						zc.Remove(k)
					} else {
						zc.Put(k, val)
					}
				}
			}
			if s := m.Stats(); s.RetainedBytes == 0 || s.RetainedSpans == 0 {
				t.Fatalf("churn retained nothing (%+v): the gate is not exercising the MVCC path", s)
			}
			for _, sn := range open {
				sn.Close()
			}

			s, ok := m.StatsConsistent()
			if !ok {
				t.Fatal("StatsConsistent failed: limbo did not drain with no readers pinned")
			}
			t.Logf("after close: retainedBytes=%d retainedSpans=%d openSnapshots=%d horizonLag=%d limboItems=%d",
				s.RetainedBytes, s.RetainedSpans, s.OpenSnapshots, s.HorizonLag, s.LimboItems)
			if s.OpenSnapshots != 0 || s.RetainedBytes != 0 || s.RetainedSpans != 0 || s.HorizonLag != 0 {
				t.Fatalf("retained-version store did not drain: open=%d bytes=%d spans=%d lag=%d",
					s.OpenSnapshots, s.RetainedBytes, s.RetainedSpans, s.HorizonLag)
			}
			if s.LimboItems != 0 || s.LimboBytes != 0 {
				t.Fatalf("limbo not drained after snapshot close: items=%d bytes=%d", s.LimboItems, s.LimboBytes)
			}
		})
	}
}

// TestLeakGateShardedChurnDrains is the leak gate for the sharded
// front-end: the same delete-heavy churn and full drain, but across 4
// hash-partitioned shards, each with its own arena and epoch domain. The
// gate is per shard, not just in aggregate — KeyLeakBytes must be
// exactly zero and limbo empty on EVERY shard, so a single shard
// leaking cannot hide behind the others' totals.
func TestLeakGateShardedChurnDrains(t *testing.T) {
	const shards = 4
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 64, BlockSize: 1 << 20, ReclaimHeaders: true, Shards: shards})
	defer m.Close()
	zc := m.ZC()

	const (
		keySpace = 4096
		workers  = 4
		opsPer   = 50_000
	)
	val := make([]byte, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xC0FFEE))
			v := make([]byte, len(val))
			for i := 0; i < opsPer; i++ {
				k := rng.Uint64N(keySpace)
				switch op := rng.Uint64N(100); {
				case op < 45:
					zc.Put(k, v)
				case op < 90:
					zc.Remove(k)
				default:
					if buf := zc.Get(k); buf != nil {
						buf.Len()
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	for k := uint64(0); k < keySpace; k++ {
		zc.Remove(k)
	}
	s, ok := m.StatsConsistent()
	if !ok {
		t.Fatal("StatsConsistent failed: some shard's limbo did not drain with no readers pinned")
	}
	if s.Shards != shards {
		t.Fatalf("Stats.Shards = %d, want %d", s.Shards, shards)
	}
	if s.Len != 0 {
		t.Fatalf("Len = %d after removing every key", s.Len)
	}
	per := m.ShardStats()
	if len(per) != shards {
		t.Fatalf("ShardStats returned %d entries, want %d", len(per), shards)
	}
	for i, ss := range per {
		t.Logf("shard %d: len=%d live=%d keyLeak=%d limboItems=%d limboBytes=%d chunks=%d",
			i, ss.Len, ss.LiveBytes, ss.KeyLeakBytes, ss.LimboItems, ss.LimboBytes, ss.Chunks)
		if ss.KeyLeakBytes != 0 {
			t.Fatalf("shard %d: KeyLeakBytes = %d with default key reclamation", i, ss.KeyLeakBytes)
		}
		if ss.LimboItems != 0 || ss.LimboBytes != 0 {
			t.Fatalf("shard %d: limbo not drained: items=%d bytes=%d", i, ss.LimboItems, ss.LimboBytes)
		}
		// Per-shard residual tail: same chunk-metadata bound as the plain
		// gate; each shard holds its own head chunk.
		const liveBound = 16 * 1024
		if ss.LiveBytes > liveBound {
			t.Fatalf("shard %d: LiveBytes = %d after full drain (bound %d)", i, ss.LiveBytes, liveBound)
		}
	}
}
