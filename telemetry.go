package oakmap

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"oakmap/internal/arena"
	"oakmap/internal/core"
	"oakmap/internal/telemetry"
	"oakmap/internal/telemetry/export"
	"oakmap/sharded"
)

// Telemetry is the map's observability scope: sharded op counters,
// sampled op-latency histograms, structural gauges, and a bounded
// flight recorder of structural events (rebalances, epoch advances,
// limbo drains, block lifecycle, free-list migrations). Attach one via
// Options.Telemetry; a single Telemetry may be shared by several maps
// (their ops aggregate; per-map gauges are registered by the most
// recently constructed map).
//
// Telemetry is disabled by default. When attached, hot-path latency is
// sampled (1 in 2^SampleShift operations), keeping the measured Get/Put
// overhead under 3% (see bench_output_telemetry.txt); rare structural
// operations — rebalance, epoch advance/drain, arena compaction and
// rescue — are timed on every occurrence.
type Telemetry struct {
	rec *telemetry.Recorder
}

// TelemetryOptions sizes a Telemetry. The zero value (or nil) gives the
// defaults: sample 1 in 64 hot ops, retain the last 1024 events.
type TelemetryOptions struct {
	// SampleShift: hot-op latencies are recorded for 1 in 2^SampleShift
	// operations. 0 means the default (6); negative samples every call
	// (expect measurable overhead).
	SampleShift int
	// EventBuffer is the flight-recorder capacity in events, rounded up
	// to a power of two. 0 means the default (1024).
	EventBuffer int
}

// NewTelemetry creates a telemetry scope to pass in Options.Telemetry.
func NewTelemetry(o *TelemetryOptions) *Telemetry {
	var cfg telemetry.Config
	if o != nil {
		cfg.SampleShift = o.SampleShift
		cfg.EventBuffer = o.EventBuffer
	}
	return &Telemetry{rec: telemetry.New(cfg)}
}

// recorder returns the internal recorder (nil for nil t), for wiring
// into core options.
func (t *Telemetry) recorder() *telemetry.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Every exported Telemetry method is safe on a nil receiver, exactly
// like the internal Recorder: a nil *Telemetry means "telemetry
// disabled" and every read-out degrades to its empty form (no events,
// zero counts, empty summary, a /metrics page that says so). Tools that
// thread an optional telemetry scope (oak-stress, oak-server) rely on
// this so their reporting paths need no nil branches.

// MetricsHandler serves the Prometheus text-format exposition — mount
// it at /metrics. On a nil scope the handler reports telemetry
// disabled rather than panicking at serve time.
func (t *Telemetry) MetricsHandler() http.Handler {
	return export.Handler(t.recorder())
}

// WriteMetrics renders the Prometheus text-format exposition to w.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	return export.WriteMetrics(w, t.recorder())
}

// PublishExpvar registers the telemetry snapshot under name in the
// process-global expvar registry (served at /debug/vars). Safe to call
// more than once; the first registration for a name wins.
func (t *Telemetry) PublishExpvar(name string) {
	export.Publish(name, t.recorder())
}

// Summary renders a human-readable per-op latency table (empty when
// nothing has been recorded, or when t is nil).
func (t *Telemetry) Summary() string {
	return export.SummaryTable(t.recorder())
}

// RegisterGauge registers (or replaces) a named read-out on the scope,
// exported through MetricsHandler/WriteMetrics alongside the map's own
// gauges. counter marks cumulative totals (Prometheus TYPE counter);
// name may carry labels (`oak_server_commands_total{cmd="get"}`).
// Subsystems layered over the map — oak-server is the canonical one —
// use this to ride the existing exporter instead of running their own.
// No-op on a nil scope.
func (t *Telemetry) RegisterGauge(name string, counter bool, read func() float64) {
	kind := telemetry.KindGauge
	if counter {
		kind = telemetry.KindCounter
	}
	t.recorder().RegisterGauge(name, kind, read)
}

// TelemetryEvent is one flight-recorder entry. A, B and C are
// kind-specific arguments:
//
//	rebalance_begin  A: heuristic live entries in the engaged chunk
//	rebalance_end    A: chunks retired  B: chunks produced  C: entries migrated
//	epoch_advance    A: new epoch
//	limbo_drain      A: items drained   B: bytes drained
//	block_grow       A: allocator block count  B: block size bytes
//	block_retain     A: pooled free blocks after the retain
//	block_drop       A: pooled free blocks at the drop
//	class_migrate    A: migrated span length in bytes
type TelemetryEvent struct {
	Seq     uint64 // global sequence number (1-based, gap-free at append)
	Time    time.Time
	Kind    string
	A, B, C uint64
}

// String renders the event for logs.
func (e TelemetryEvent) String() string {
	return fmt.Sprintf("#%d %s %s a=%d b=%d c=%d",
		e.Seq, e.Time.Format("15:04:05.000000"), e.Kind, e.A, e.B, e.C)
}

// DumpEvents returns the flight recorder's surviving events oldest
// first (nil for a nil scope). Safe to call concurrently with live
// operations: events being overwritten at that instant are skipped,
// never returned torn.
func (t *Telemetry) DumpEvents() []TelemetryEvent {
	evs := t.recorder().Events()
	if evs == nil {
		return nil
	}
	out := make([]TelemetryEvent, len(evs))
	for i, ev := range evs {
		out[i] = TelemetryEvent{
			Seq:  ev.Seq,
			Time: time.Unix(0, ev.UnixNano),
			Kind: ev.Kind.String(),
			A:    ev.A, B: ev.B, C: ev.C,
		}
	}
	return out
}

// EventCount returns the total number of events ever appended to the
// flight recorder — including those already overwritten. DumpEvents
// returns at most the buffer's worth of the newest ones.
func (t *Telemetry) EventCount() uint64 {
	return t.recorder().EventSeq()
}

// OpLatency is one operation class's latency snapshot. Count is exact;
// the percentiles are computed over the recorded (for hot ops: sampled)
// subset.
type OpLatency struct {
	Op      string
	Count   uint64
	Sampled uint64
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration
	Max     time.Duration
}

// OpLatencies snapshots every operation class, in a fixed order.
func (t *Telemetry) OpLatencies() []OpLatency {
	r := t.recorder()
	if r == nil {
		return nil
	}
	out := make([]OpLatency, 0, int(telemetry.NumOps))
	for _, s := range r.Snapshot() {
		out = append(out, OpLatency{
			Op:      s.Op.String(),
			Count:   s.Count,
			Sampled: s.Hist.Count,
			P50:     s.Hist.Quantile(0.50),
			P99:     s.Hist.Quantile(0.99),
			P999:    s.Hist.Quantile(0.999),
			Max:     time.Duration(s.Hist.MaxNanos),
		})
	}
	return out
}

// registerMapGauges wires a map's structural read-outs into the
// recorder so the exporter can enumerate them at scrape time. Names
// follow Prometheus conventions; per-class occupancy carries a class
// label with the class's span size in bytes.
func registerMapGauges(r *telemetry.Recorder, c *core.Map) {
	reg := func(name string, kind telemetry.GaugeKind, f func() float64) {
		r.RegisterGauge(name, kind, f)
	}
	reg("oak_len", telemetry.KindGauge, func() float64 { return float64(c.Len()) })
	reg("oak_footprint_bytes", telemetry.KindGauge, func() float64 { return float64(c.Footprint()) })
	reg("oak_live_bytes", telemetry.KindGauge, func() float64 { return float64(c.LiveBytes()) })
	reg("oak_chunks", telemetry.KindGauge, func() float64 { return float64(c.NumChunks()) })
	reg("oak_rebalances_total", telemetry.KindCounter, func() float64 { return float64(c.Rebalances()) })
	reg("oak_key_leak_bytes", telemetry.KindGauge, func() float64 { return float64(c.KeyLeakBytes()) })
	reg("oak_header_count", telemetry.KindGauge, func() float64 { return float64(c.HeaderCount()) })

	reg("oak_epoch", telemetry.KindCounter, func() float64 { return float64(c.ReclaimStats().Epoch) })
	reg("oak_pinned_readers", telemetry.KindGauge, func() float64 { return float64(c.ReclaimStats().Pinned) })
	reg("oak_limbo_items", telemetry.KindGauge, func() float64 { return float64(c.ReclaimStats().LimboItems) })
	reg("oak_limbo_bytes", telemetry.KindGauge, func() float64 { return float64(c.ReclaimStats().LimboBytes) })
	reg("oak_epoch_advances_total", telemetry.KindCounter, func() float64 { return float64(c.ReclaimStats().Advances) })
	reg("oak_epoch_drains_total", telemetry.KindCounter, func() float64 { return float64(c.ReclaimStats().Drains) })
	reg("oak_epoch_slot_overflows_total", telemetry.KindCounter, func() float64 { return float64(c.ReclaimStats().SlotOverflows) })

	reg("oak_mvcc_open_snapshots", telemetry.KindGauge, func() float64 { return float64(c.MVCCStats().OpenSnapshots) })
	reg("oak_mvcc_retained_bytes", telemetry.KindGauge, func() float64 { return float64(c.MVCCStats().RetainedBytes) })
	reg("oak_mvcc_retained_spans", telemetry.KindGauge, func() float64 { return float64(c.MVCCStats().RetainedSpans) })
	reg("oak_mvcc_horizon_lag", telemetry.KindGauge, func() float64 { return float64(c.MVCCStats().HorizonLag) })

	// One ArenaStats snapshot feeds every arena gauge. ArenaStats walks
	// the allocator's per-class locks, so letting each of the ~2×classes
	// closures call it independently per scrape was an O(classes²) lock
	// storm; the cache refreshes once and the whole scrape family reads
	// the same consistent snapshot.
	snap := &arenaSnap{c: c}
	reg("oak_arena_blocks", telemetry.KindGauge, func() float64 { return float64(snap.get().Blocks) })
	reg("oak_arena_free_spans", telemetry.KindGauge, func() float64 { return float64(snap.get().FreeSpans) })
	reg("oak_arena_fragmentation_ratio", telemetry.KindGauge, func() float64 { return snap.get().Fragmentation })
	reg("oak_arena_alloc_calls_total", telemetry.KindCounter, func() float64 { return float64(snap.get().AllocCalls) })
	for i, cs := range c.ArenaStats().Classes {
		idx := i // capture
		reg(fmt.Sprintf("oak_arena_class_spans{class=%q}", fmt.Sprint(cs.Size)), telemetry.KindGauge,
			func() float64 {
				if st := snap.get(); idx < len(st.Classes) {
					return float64(st.Classes[idx].Spans)
				}
				return 0
			})
		reg(fmt.Sprintf("oak_arena_class_bytes{class=%q}", fmt.Sprint(cs.Size)), telemetry.KindGauge,
			func() float64 {
				if st := snap.get(); idx < len(st.Classes) {
					return float64(st.Classes[idx].Bytes)
				}
				return 0
			})
	}
}

// arenaSnapTTL is how long one ArenaStats snapshot serves gauge reads.
// A scrape enumerates every gauge within microseconds, so 2ms collapses
// a scrape's O(gauges) ArenaStats calls into one while staying far
// below any scrape interval — back-to-back scrapes still see fresh
// numbers.
const arenaSnapTTL = 2 * time.Millisecond

// arenaSnap memoizes one shard's ArenaStats for the duration of a
// scrape (see arenaSnapTTL).
type arenaSnap struct {
	c  *core.Map
	mu sync.Mutex
	at time.Time
	st arena.Stats
}

func (a *arenaSnap) get() arena.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.at.IsZero() || time.Since(a.at) > arenaSnapTTL {
		a.st = a.c.ArenaStats()
		a.at = time.Now()
	}
	return a.st
}

// registerShardedGauges wires a sharded map's read-outs into the
// recorder: the same oak_* names as a plain map carrying the rollup
// across shards (sums; oak_epoch reports the max shard epoch), plus an
// oak_shards gauge and per-shard labeled gauges for the signals that
// matter per partition — occupancy, live bytes, key-leak accounting,
// and rebalance pressure. Per-class arena gauges are deliberately not
// exported per shard: the cardinality (shards × classes) drowns scrapes
// for no diagnostic gain.
func registerShardedGauges(r *telemetry.Recorder, s *sharded.Map) {
	shards := s.Shards()
	reg := func(name string, kind telemetry.GaugeKind, f func() float64) {
		r.RegisterGauge(name, kind, f)
	}
	sum := func(per func(c *core.Map) float64) func() float64 {
		return func() float64 {
			var t float64
			for _, c := range shards {
				t += per(c)
			}
			return t
		}
	}

	reg("oak_shards", telemetry.KindGauge, func() float64 { return float64(len(shards)) })

	reg("oak_len", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.Len()) }))
	reg("oak_footprint_bytes", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.Footprint()) }))
	reg("oak_live_bytes", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.LiveBytes()) }))
	reg("oak_chunks", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.NumChunks()) }))
	reg("oak_rebalances_total", telemetry.KindCounter, sum(func(c *core.Map) float64 { return float64(c.Rebalances()) }))
	reg("oak_key_leak_bytes", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.KeyLeakBytes()) }))
	reg("oak_header_count", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.HeaderCount()) }))

	reg("oak_epoch", telemetry.KindCounter, func() float64 {
		var m uint64
		for _, c := range shards {
			if e := c.ReclaimStats().Epoch; e > m {
				m = e
			}
		}
		return float64(m)
	})
	reg("oak_pinned_readers", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.ReclaimStats().Pinned) }))
	reg("oak_limbo_items", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.ReclaimStats().LimboItems) }))
	reg("oak_limbo_bytes", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.ReclaimStats().LimboBytes) }))
	reg("oak_epoch_advances_total", telemetry.KindCounter, sum(func(c *core.Map) float64 { return float64(c.ReclaimStats().Advances) }))
	reg("oak_epoch_drains_total", telemetry.KindCounter, sum(func(c *core.Map) float64 { return float64(c.ReclaimStats().Drains) }))
	reg("oak_epoch_slot_overflows_total", telemetry.KindCounter, sum(func(c *core.Map) float64 { return float64(c.ReclaimStats().SlotOverflows) }))

	// MVCC rollup: retained space sums; open snapshots and horizon lag
	// report the maximum (a cross-shard snapshot registers on every
	// shard, so a sum would multiply-count it by the shard count).
	maxOf := func(per func(c *core.Map) float64) func() float64 {
		return func() float64 {
			var m float64
			for _, c := range shards {
				if v := per(c); v > m {
					m = v
				}
			}
			return m
		}
	}
	reg("oak_mvcc_open_snapshots", telemetry.KindGauge, maxOf(func(c *core.Map) float64 { return float64(c.MVCCStats().OpenSnapshots) }))
	reg("oak_mvcc_retained_bytes", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.MVCCStats().RetainedBytes) }))
	reg("oak_mvcc_retained_spans", telemetry.KindGauge, sum(func(c *core.Map) float64 { return float64(c.MVCCStats().RetainedSpans) }))
	reg("oak_mvcc_horizon_lag", telemetry.KindGauge, maxOf(func(c *core.Map) float64 { return float64(c.MVCCStats().HorizonLag) }))

	// Arena rollups read through per-shard snapshots (one ArenaStats
	// call per shard per scrape, not per gauge — see arenaSnap).
	snaps := make([]*arenaSnap, len(shards))
	for i, c := range shards {
		snaps[i] = &arenaSnap{c: c}
	}
	reg("oak_arena_blocks", telemetry.KindGauge, func() float64 {
		var t float64
		for _, s := range snaps {
			t += float64(s.get().Blocks)
		}
		return t
	})
	reg("oak_arena_free_spans", telemetry.KindGauge, func() float64 {
		var t float64
		for _, s := range snaps {
			t += float64(s.get().FreeSpans)
		}
		return t
	})
	reg("oak_arena_alloc_calls_total", telemetry.KindCounter, func() float64 {
		var t float64
		for _, s := range snaps {
			t += float64(s.get().AllocCalls)
		}
		return t
	})
	// Fragmentation is a ratio, so the rollup weights each shard's ratio
	// by its live bytes: a near-empty shard's (noisy) ratio must not
	// swamp the signal from the shards actually holding data. Falls back
	// to a plain mean while every shard is empty. Plain maps export the
	// same name from registerMapGauges, so dashboards keep the series
	// across a Shards config change.
	reg("oak_arena_fragmentation_ratio", telemetry.KindGauge, func() float64 {
		var weighted, live, plain float64
		for _, s := range snaps {
			st := s.get()
			weighted += st.Fragmentation * float64(st.LiveBytes)
			live += float64(st.LiveBytes)
			plain += st.Fragmentation
		}
		if live > 0 {
			return weighted / live
		}
		if n := len(snaps); n > 0 {
			return plain / float64(n)
		}
		return 0
	})

	for i, c := range shards {
		c := c
		lbl := fmt.Sprintf("{shard=%q}", fmt.Sprint(i))
		reg("oak_shard_len"+lbl, telemetry.KindGauge, func() float64 { return float64(c.Len()) })
		reg("oak_shard_live_bytes"+lbl, telemetry.KindGauge, func() float64 { return float64(c.LiveBytes()) })
		reg("oak_shard_key_leak_bytes"+lbl, telemetry.KindGauge, func() float64 { return float64(c.KeyLeakBytes()) })
		reg("oak_shard_rebalances_total"+lbl, telemetry.KindCounter, func() float64 { return float64(c.Rebalances()) })
	}
}
