// Telemetry overhead measurement: the same Get/Put microbenchmark run
// with telemetry disabled (nil Options.Telemetry) and enabled (default
// 1-in-64 sampling). The recorded numbers live in
// bench_output_telemetry.txt; TestTelemetryOverheadGate holds the
// enabled/disabled ratio under the 3% budget.
package oakmap_test

import (
	"fmt"
	"testing"
	"time"

	"oakmap"
)

const telBenchKeys = 1 << 13 // 8192 resident keys, power of two for masking

func telBenchMap(tel *oakmap.Telemetry) *oakmap.Map[uint64, uint64] {
	m := oakmap.New[uint64, uint64](oakmap.Uint64Serializer{}, oakmap.Uint64Serializer{},
		&oakmap.Options{BlockSize: 8 << 20, Telemetry: tel})
	for k := uint64(0); k < telBenchKeys; k++ {
		if _, _, err := m.Put(k, k); err != nil {
			panic(err)
		}
	}
	return m
}

func telTelemetry(on bool) *oakmap.Telemetry {
	if !on {
		return nil
	}
	return oakmap.NewTelemetry(nil)
}

func benchTelGet(b *testing.B, on bool) {
	m := telBenchMap(telTelemetry(on))
	defer m.Close()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := m.Get(uint64(i) & (telBenchKeys - 1))
		sink += v
	}
	_ = sink
}

func benchTelPut(b *testing.B, on bool) {
	m := telBenchMap(telTelemetry(on))
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) & (telBenchKeys - 1)
		if _, _, err := m.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetTelemetryOnVsOff is the overhead benchmark the <3% budget
// is recorded against (bench_output_telemetry.txt).
func BenchmarkGetTelemetryOnVsOff(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTelGet(b, false) })
	b.Run("on", func(b *testing.B) { benchTelGet(b, true) })
}

// BenchmarkPutTelemetryOnVsOff is the Put-side companion.
func BenchmarkPutTelemetryOnVsOff(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTelPut(b, false) })
	b.Run("on", func(b *testing.B) { benchTelPut(b, true) })
}

// TestTelemetryOverheadGate asserts the <3% hot-path overhead budget.
//
// Methodology: interleaved off/on pairs, min-of-N per config — the min
// is the least-noise estimate of each config's true cost, and
// interleaving keeps thermal/GC drift from biasing one side. The gate
// retries because a 3% bound sits near scheduler-noise level on shared
// CI machines; a real regression (sampling bug, always-on timing) shows
// up as 10%+ on every attempt and still fails all retries.
//
// Skipped under -short and under the race detector: race instrumentation
// multiplies both sides by ~10x and the telemetry branch's relative cost
// becomes meaningless.
func TestTelemetryOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate needs benchmark-grade timing; skipped in -short")
	}
	if raceEnabled {
		t.Skip("overhead ratios are meaningless under the race detector")
	}

	const (
		rounds   = 4
		budget   = 1.03
		attempts = 3
	)
	measure := func() (offNs, onNs float64) {
		offNs, onNs = 1e18, 1e18
		for i := 0; i < rounds; i++ {
			ro := testing.Benchmark(func(b *testing.B) { benchTelGet(b, false) })
			rn := testing.Benchmark(func(b *testing.B) { benchTelGet(b, true) })
			if v := float64(ro.NsPerOp()); v < offNs {
				offNs = v
			}
			if v := float64(rn.NsPerOp()); v < onNs {
				onNs = v
			}
		}
		return offNs, onNs
	}
	var last string
	for a := 0; a < attempts; a++ {
		offNs, onNs := measure()
		ratio := onNs / offNs
		last = fmt.Sprintf("get off=%.1fns on=%.1fns ratio=%.4f", offNs, onNs, ratio)
		t.Log(last)
		// Sub-nanosecond absolute deltas are timer noise regardless of
		// ratio; anything under budget passes outright.
		if ratio < budget || onNs-offNs < 1.0 {
			return
		}
		time.Sleep(50 * time.Millisecond) // let background work drain before retrying
	}
	t.Fatalf("telemetry overhead above %.0f%% budget on all %d attempts: %s",
		(budget-1)*100, attempts, last)
}
