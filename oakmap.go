// Package oakmap is a Go implementation of Oak — a scalable, concurrent,
// ordered key-value map that self-manages its data off-heap (Meir et al.,
// "Oak: A Scalable Off-Heap Allocated Key-Value Map", PPoPP '20).
//
// Keys and values are serialized into large pointer-free memory blocks
// that the Go garbage collector treats as single opaque objects, so the
// GC cost is independent of the number of mappings. Metadata (a chunk
// list plus a skiplist index) stays on-heap. Two API surfaces are
// offered, mirroring the paper's Table 1:
//
//   - The legacy, ConcurrentNavigableMap-style API on Map[K, V]:
//     object-in/object-out with (de)serialization per call.
//   - The zero-copy API behind Map.ZC(): gets and scans return buffer
//     views (OakRBuffer), updates take in-place lambdas (OakWBuffer) and
//     do not return old values.
//
// All point operations — Get, Put, PutIfAbsent, Remove, ComputeIfPresent,
// PutIfAbsentComputeIfPresent — are linearizable; update lambdas execute
// atomically, exactly once. Scans are non-atomic, as in the paper.
//
// Setting Options.Shards hash-partitions the map across that many
// independent Oak instances (per-shard arena, epoch domain and chunk
// list) behind the same API: point operations route to one shard, and
// ordered scans merge the per-shard streams back into one globally
// sorted sequence. Sharding trades a small per-scan merge cost for
// eliminating cross-core contention on the hottest structures.
package oakmap

import (
	"bytes"
	"runtime"
	"sync"

	"oakmap/internal/arena"
	"oakmap/internal/core"
	"oakmap/sharded"
)

// Comparator orders serialized keys. It must be consistent with the key
// serializer: cmp(ser(a), ser(b)) must order a and b.
type Comparator = func(a, b []byte) int

// ErrConcurrentModification is returned by OakRBuffer accessors when the
// underlying mapping was concurrently deleted — the analogue of the
// ConcurrentModificationException described in §2.2.
var ErrConcurrentModification = core.ErrConcurrentModification

// Options configures a Map. The zero value (or nil) gives the paper's
// defaults: 4096-entry chunks, rebalance at 50% unsorted, 100MB blocks
// from the process-wide shared pool, one shard.
type Options struct {
	// ChunkCapacity is the number of entry slots per chunk.
	ChunkCapacity int
	// RebalanceRatio controls when a chunk reorganizes (see DESIGN.md).
	RebalanceRatio float64
	// BlockSize, when non-zero, gives this map a private block pool with
	// the given block size instead of the shared 100MB-block pool. With
	// Shards > 1 the private pool is shared by all shards, so the map's
	// off-heap budget stays global while each shard allocates from it
	// independently.
	BlockSize int
	// PoolMaxBytes bounds the private pool (requires BlockSize).
	PoolMaxBytes int64
	// Comparator overrides the default bytes.Compare key order.
	Comparator Comparator
	// Shards, when > 1, hash-partitions the map across that many
	// independent Oak instances. Keys route by a stable hash; ordered
	// scans and navigation queries transparently merge the shards back
	// into one globally sorted view. 0 and 1 mean a single instance.
	Shards int
	// DisableFirstFit disables free-space reuse (ablation studies).
	DisableFirstFit bool
	// FlatFreeList selects the paper's flat first-fit free list instead
	// of the default segregated size-class allocator (ablation studies).
	FlatFreeList bool
	// DisableKeyReclaim turns off the default epoch-based reclamation of
	// dead key space (ablation / paper-faithful baseline): dead keys are
	// then retained forever and accounted in Stats.KeyLeakBytes.
	DisableKeyReclaim bool
	// ReclaimHeaders enables the generation-based header reclamation
	// extension (bounds header space under delete-heavy workloads).
	// Header recycling is deferred through the same epoch domain as key
	// and value space, so retained views stay safe.
	ReclaimHeaders bool
	// Telemetry, when non-nil, attaches an observability scope to the
	// map: sharded op counters, sampled op-latency histograms, structural
	// gauges and a flight recorder of rebalance/epoch/arena events (see
	// NewTelemetry). Nil — the default — disables telemetry entirely; the
	// hot path then pays a single nil check per operation. With
	// Shards > 1 every shard feeds the same scope and the gauges roll the
	// shards up (plus per-shard breakdowns for imbalance debugging).
	Telemetry *Telemetry
}

// Map is an Oak map from K to V. Create instances with New; the zero
// value is not usable. All methods are safe for concurrent use.
type Map[K, V any] struct {
	be     backend
	keySer Serializer[K]
	valSer Serializer[V]

	keyBufs sync.Pool // scratch buffers for serialized keys
}

// New creates an Oak map with the given key/value serializers.
func New[K, V any](keySer Serializer[K], valSer Serializer[V], opts *Options) *Map[K, V] {
	var o Options
	if opts != nil {
		o = *opts
	}
	cmp := o.Comparator
	if cmp == nil {
		cmp = bytes.Compare
	}
	rec := o.Telemetry.recorder()
	var pool *arena.Pool
	if o.BlockSize > 0 {
		pool = arena.NewPool(o.BlockSize, o.PoolMaxBytes)
		// The shared pool stays uninstrumented: its block events would
		// interleave several maps' lifecycles into one recorder.
		pool.SetTelemetry(rec)
	}
	copts := &core.Options{
		ChunkCapacity:     o.ChunkCapacity,
		RebalanceRatio:    o.RebalanceRatio,
		Pool:              pool,
		Comparator:        cmp,
		DisableFirstFit:   o.DisableFirstFit,
		FlatFreeList:      o.FlatFreeList,
		DisableKeyReclaim: o.DisableKeyReclaim,
		ReclaimHeaders:    o.ReclaimHeaders,
		Telemetry:         rec,
	}
	m := &Map[K, V]{keySer: keySer, valSer: valSer}
	if o.Shards > 1 {
		s := sharded.New(o.Shards, copts)
		m.be = shardedBackend{s: s}
		if rec != nil {
			registerShardedGauges(rec, s)
		}
	} else {
		c := core.New(copts)
		m.be = plainBackend{c: c}
		if rec != nil {
			registerMapGauges(rec, c)
		}
	}
	m.keyBufs.New = func() any { b := make([]byte, 0, 64); return &b }
	return m
}

// serializeKey writes k into a pooled scratch buffer. Callers must call
// releaseKey when done (the core copies key bytes it needs to retain).
func (m *Map[K, V]) serializeKey(k K) *[]byte {
	bp := m.keyBufs.Get().(*[]byte)
	n := m.keySer.SizeOf(k)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	m.keySer.Serialize(k, *bp)
	return bp
}

func (m *Map[K, V]) releaseKey(bp *[]byte) { m.keyBufs.Put(bp) }

func (m *Map[K, V]) serializeVal(v V) []byte {
	buf := make([]byte, m.valSer.SizeOf(v))
	m.valSer.Serialize(v, buf)
	return buf
}

// valueWriter serializes v lazily, directly into Oak's off-heap buffer —
// the paper's zero-intermediate-copy insertion path (§2.1).
func (m *Map[K, V]) valueWriter(v V) core.ValueWriter {
	return core.ValueWriter{
		N:     m.valSer.SizeOf(v),
		Write: func(dst []byte) { m.valSer.Serialize(v, dst) },
	}
}

// Len returns the number of mappings (summed across shards).
func (m *Map[K, V]) Len() int {
	n := 0
	for _, c := range m.be.Shards() {
		n += c.Len()
	}
	return n
}

// Footprint returns the map's total off-heap memory in bytes — the fast
// RAM-footprint estimate the paper calls out as a first-class feature.
func (m *Map[K, V]) Footprint() int64 {
	var n int64
	for _, c := range m.be.Shards() {
		n += c.Footprint()
	}
	return n
}

// LiveBytes returns the off-heap bytes currently holding keys and values.
func (m *Map[K, V]) LiveBytes() int64 {
	var n int64
	for _, c := range m.be.Shards() {
		n += c.LiveBytes()
	}
	return n
}

// NumShards returns the number of independent Oak instances behind the
// map: 1 unless Options.Shards asked for more.
func (m *Map[K, V]) NumShards() int { return len(m.be.Shards()) }

// Close releases the map's off-heap blocks back to their pool. The map
// and any outstanding buffer views become invalid.
func (m *Map[K, V]) Close() { m.be.Close() }

// ZC returns the map's zero-copy view (the paper's map.zc()).
func (m *Map[K, V]) ZC() ZeroCopyMap[K, V] { return ZeroCopyMap[K, V]{m} }

// --- Legacy (ConcurrentNavigableMap-style) API: copies on the boundary ---

// Get returns a copy of the value mapped to k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	c := m.be.ShardFor(*kb)
	var out V
	found := false
	h, ok := c.Get(*kb)
	if ok {
		err := c.ReadValue(h, func(b []byte) error {
			out = m.valSer.Deserialize(b)
			found = true
			return nil
		})
		if err != nil {
			found = false // deleted between Get and read: treat as absent
		}
	}
	return out, found
}

// Put maps k to v and returns the previous value, if any. Unlike the
// zero-copy put, this copies the old value out first (atomically).
func (m *Map[K, V]) Put(k K, v V) (prev V, replaced bool, err error) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	vb := m.serializeVal(v)
	c := m.be.ShardFor(*kb) // one route for the whole swap loop
	for {
		var old V
		got := false
		ok, cerr := c.ComputeIfPresent(*kb, func(w *core.WBuffer) error {
			old = m.valSer.Deserialize(w.Bytes())
			got = true
			return w.Set(vb)
		})
		if cerr != nil {
			return prev, false, cerr
		}
		if ok && got {
			return old, true, nil
		}
		ins, perr := c.PutIfAbsent(*kb, vb)
		if perr != nil {
			return prev, false, perr
		}
		if ins {
			return prev, false, nil
		}
		// Lost a race with a concurrent insert; retry the swap.
	}
}

// PutIfAbsent inserts k→v if k is absent. When the key is present, the
// current value is returned (copied), like Java's putIfAbsent.
func (m *Map[K, V]) PutIfAbsent(k K, v V) (existing V, inserted bool, err error) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	vb := m.serializeVal(v)
	c := m.be.ShardFor(*kb)
	for {
		ins, perr := c.PutIfAbsent(*kb, vb)
		if perr != nil {
			return existing, false, perr
		}
		if ins {
			return existing, true, nil
		}
		h, ok := c.Get(*kb)
		if !ok {
			continue // removed in between; retry
		}
		var out V
		rerr := c.ReadValue(h, func(b []byte) error {
			out = m.valSer.Deserialize(b)
			return nil
		})
		if rerr != nil {
			continue
		}
		return out, false, nil
	}
}

// Remove deletes the mapping for k, returning the removed value.
func (m *Map[K, V]) Remove(k K) (prev V, removed bool, err error) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	c := m.be.ShardFor(*kb)
	// Copy the value atomically at the removal point: computeIfPresent's
	// lambda snapshots the value, then the remove races; to keep it
	// one-shot we snapshot under the compute lock and remove after. If a
	// concurrent writer replaces the value in between, the legacy API's
	// "returned value was the mapped value at some point" contract holds.
	var snap V
	got := false
	_, cerr := c.ComputeIfPresent(*kb, func(w *core.WBuffer) error {
		snap = m.valSer.Deserialize(w.Bytes())
		got = true
		return nil
	})
	if cerr != nil {
		return prev, false, cerr
	}
	ok, rerr := c.Remove(*kb)
	if rerr != nil {
		return prev, false, rerr
	}
	if ok && got {
		return snap, true, nil
	}
	return prev, ok, nil
}

// ComputeIfPresent atomically replaces k's value with f(current value).
// Unlike Java's non-atomic computeIfPresent, the update is atomic: f is
// applied exactly once, under the value's write lock.
func (m *Map[K, V]) ComputeIfPresent(k K, f func(V) V) (bool, error) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	return m.be.ShardFor(*kb).ComputeIfPresent(*kb, func(w *core.WBuffer) error {
		nv := f(m.valSer.Deserialize(w.Bytes()))
		return w.Set(m.serializeVal(nv))
	})
}

// Merge inserts v if k is absent, else atomically replaces the value
// with f(current) — Java's merge, with Oak's stronger atomicity.
func (m *Map[K, V]) Merge(k K, v V, f func(V) V) error {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	vb := m.serializeVal(v)
	return m.be.ShardFor(*kb).PutIfAbsentComputeIfPresent(*kb, vb, func(w *core.WBuffer) error {
		nv := f(m.valSer.Deserialize(w.Bytes()))
		return w.Set(m.serializeVal(nv))
	})
}

// Range calls f for each mapping with from ≤ k < to in ascending order,
// deserializing both key and value (the legacy scan). Nil bounds are
// open. Returning false stops the scan. With shards the per-shard
// streams arrive merged: f still sees one globally ascending sequence.
func (m *Map[K, V]) Range(from, to *K, f func(k K, v V) bool) {
	lo, hi := m.boundBytes(from), m.boundBytes(to)
	m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		k := m.keySer.Deserialize(key)
		var v V
		ok := false
		src.ReadValue(h, func(b []byte) error {
			v = m.valSer.Deserialize(b)
			ok = true
			return nil
		})
		if !ok {
			return true // deleted mid-scan: skip
		}
		return f(k, v)
	})
}

// RangeDescending is Range in descending key order.
func (m *Map[K, V]) RangeDescending(from, to *K, f func(k K, v V) bool) {
	lo, hi := m.boundBytes(from), m.boundBytes(to)
	m.be.Descend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		k := m.keySer.Deserialize(key)
		var v V
		ok := false
		src.ReadValue(h, func(b []byte) error {
			v = m.valSer.Deserialize(b)
			ok = true
			return nil
		})
		if !ok {
			return true
		}
		return f(k, v)
	})
}

func (m *Map[K, V]) boundBytes(k *K) []byte {
	if k == nil {
		return nil
	}
	buf := make([]byte, m.keySer.SizeOf(*k))
	m.keySer.Serialize(*k, buf)
	return buf
}

// --- Navigation queries ---

// FirstKey returns the smallest key.
func (m *Map[K, V]) FirstKey() (K, bool) { return m.keyOf(m.be.First()) }

// LastKey returns the greatest key.
func (m *Map[K, V]) LastKey() (K, bool) { return m.keyOf(m.be.Last()) }

// FloorKey returns the greatest key ≤ k.
func (m *Map[K, V]) FloorKey(k K) (K, bool) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	return m.keyOf(m.be.Floor(*kb))
}

// CeilingKey returns the smallest key ≥ k.
func (m *Map[K, V]) CeilingKey(k K) (K, bool) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	return m.keyOf(m.be.Ceiling(*kb))
}

// LowerKey returns the greatest key < k.
func (m *Map[K, V]) LowerKey(k K) (K, bool) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	return m.keyOf(m.be.Lower(*kb))
}

// HigherKey returns the smallest key > k.
func (m *Map[K, V]) HigherKey(k K) (K, bool) {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	return m.keyOf(m.be.Higher(*kb))
}

func (m *Map[K, V]) keyOf(src *core.Map, keyRef uint64, h core.ValueHandle, ok bool) (K, bool) {
	var zero K
	if !ok {
		return zero, false
	}
	var out K
	// Deserialize under an epoch pin; a mapping deleted in the window
	// since the navigation query is reported as absent rather than read
	// from possibly-recycled bytes.
	err := src.ReadKey(keyRef, h, func(b []byte) error {
		out = m.keySer.Deserialize(b)
		return nil
	})
	if err != nil {
		return zero, false
	}
	return out, true
}

// Stats exposes internal counters for observability and experiments.
// For a sharded map the counters are rolled up: sums for sizes and
// totals, the maximum for Epoch (domains advance independently), and a
// footprint-weighted mean for Fragmentation. ShardStats exposes the
// per-shard breakdown.
type Stats struct {
	Len          int
	Footprint    int64
	LiveBytes    int64
	Rebalances   int64
	Chunks       int
	KeyLeakBytes int64
	HeaderCount  uint64
	// Shards is the number of independent Oak instances rolled into this
	// snapshot (1 for an unsharded map).
	Shards int
	// FreeSpans and Fragmentation summarize the allocator's free
	// structures: parked spans awaiting reuse, and free-list bytes as a
	// fraction of the footprint.
	FreeSpans     int
	Fragmentation float64
	// Epoch, PinnedReaders, LimboItems and LimboBytes snapshot the
	// epoch-based reclamation domain: the current global epoch, how many
	// readers are pinned, and the deferred-free backlog awaiting its
	// grace period.
	Epoch         uint64
	PinnedReaders int
	LimboItems    int
	LimboBytes    int64
	// OpenSnapshots, RetainedBytes, RetainedSpans and HorizonLag snapshot
	// the MVCC layer: open Snapshot views (the maximum across shards — a
	// cross-shard snapshot registers once per shard), the copy-on-write
	// pre-image store they pin, and how far the version clock has run
	// ahead of the oldest open snapshot (worst shard).
	OpenSnapshots int64
	RetainedBytes int64
	RetainedSpans int64
	HorizonLag    uint64
}

// statsOf snapshots one core map into the public Stats shape.
func statsOf(c *core.Map) Stats {
	as := c.ArenaStats()
	rs := c.ReclaimStats()
	ms := c.MVCCStats()
	return Stats{
		Len:           c.Len(),
		Footprint:     c.Footprint(),
		LiveBytes:     c.LiveBytes(),
		Rebalances:    c.Rebalances(),
		Chunks:        c.NumChunks(),
		KeyLeakBytes:  c.KeyLeakBytes(),
		HeaderCount:   c.HeaderCount(),
		Shards:        1,
		FreeSpans:     as.FreeSpans,
		Fragmentation: as.Fragmentation,
		Epoch:         rs.Epoch,
		PinnedReaders: rs.Pinned,
		LimboItems:    rs.LimboItems,
		LimboBytes:    rs.LimboBytes,
		OpenSnapshots: ms.OpenSnapshots,
		RetainedBytes: ms.RetainedBytes,
		RetainedSpans: ms.RetainedSpans,
		HorizonLag:    ms.HorizonLag,
	}
}

// Stats returns a snapshot of the map's internals.
//
// The snapshot is weak: each field is read atomically, but the fields
// are read at slightly different instants, so under concurrent load
// they may not describe any single moment — e.g. LiveBytes can include
// an allocation whose entry Len has not counted yet, and LimboBytes can
// disagree with a drain that completed between the two reads. Weak
// snapshots never tear an individual field and are cheap enough for hot
// polling loops. Tests and invariant checks that compare fields against
// each other should use StatsConsistent instead.
func (m *Map[K, V]) Stats() Stats {
	var agg Stats
	var fragWeighted float64
	for _, c := range m.be.Shards() {
		s := statsOf(c)
		agg.Len += s.Len
		agg.Footprint += s.Footprint
		agg.LiveBytes += s.LiveBytes
		agg.Rebalances += s.Rebalances
		agg.Chunks += s.Chunks
		agg.KeyLeakBytes += s.KeyLeakBytes
		agg.HeaderCount += s.HeaderCount
		agg.Shards++
		agg.FreeSpans += s.FreeSpans
		fragWeighted += s.Fragmentation * float64(s.Footprint)
		if s.Epoch > agg.Epoch {
			agg.Epoch = s.Epoch
		}
		agg.PinnedReaders += s.PinnedReaders
		agg.LimboItems += s.LimboItems
		agg.LimboBytes += s.LimboBytes
		if s.OpenSnapshots > agg.OpenSnapshots {
			agg.OpenSnapshots = s.OpenSnapshots
		}
		agg.RetainedBytes += s.RetainedBytes
		agg.RetainedSpans += s.RetainedSpans
		if s.HorizonLag > agg.HorizonLag {
			agg.HorizonLag = s.HorizonLag
		}
	}
	if agg.Footprint > 0 {
		agg.Fragmentation = fragWeighted / float64(agg.Footprint)
	}
	return agg
}

// ShardStats returns one Stats snapshot per shard, index-stable; a
// single-element slice for an unsharded map. Use it to spot routing
// imbalance or a shard whose reclamation is lagging.
func (m *Map[K, V]) ShardStats() []Stats {
	shards := m.be.Shards()
	out := make([]Stats, len(shards))
	for i, c := range shards {
		out[i] = statsOf(c)
	}
	return out
}

// Quiesce cycles the reclamation epoch until the deferred-free limbo
// drains on every shard, reporting whether all emptied (false means a
// reader stayed pinned somewhere). Useful before footprint assertions
// and in tests.
func (m *Map[K, V]) Quiesce() bool { return m.be.Quiesce() }

// StatsConsistent returns a mutually consistent snapshot of the map's
// internals: it quiesces reclamation, then re-reads Stats until two
// consecutive reads are identical — at that point no counter moved
// between the first field read and the last, so the fields describe one
// moment and can be compared against each other (LiveBytes vs
// Footprint, LimboItems == 0, ...). For a sharded map the fixpoint
// covers every shard: no counter on any shard moved during the read.
//
// ok is false when consistency could not be established: either the
// limbo would not drain (a reader stayed pinned) or concurrent mutators
// kept the counters moving for every retry. The last snapshot read is
// still returned. Call it only from quiescent-ish moments (test
// barriers, shutdown); under sustained load it degrades to a weak
// snapshot with ok=false.
func (m *Map[K, V]) StatsConsistent() (Stats, bool) {
	drained := m.be.Quiesce()
	prev := m.Stats()
	for i := 0; i < 16; i++ {
		cur := m.Stats()
		if cur == prev {
			return cur, drained
		}
		prev = cur
		runtime.Gosched()
	}
	return prev, false
}

// ContainsKey reports whether k is mapped.
func (m *Map[K, V]) ContainsKey(k K) bool {
	kb := m.serializeKey(k)
	defer m.releaseKey(kb)
	_, ok := m.be.ShardFor(*kb).Get(*kb)
	return ok
}

// PollFirst atomically removes and returns the smallest entry — the
// remaining ConcurrentNavigableMap surface. It loops over First/Remove
// races, so concurrent pollers each receive distinct entries.
func (m *Map[K, V]) PollFirst() (k K, v V, ok bool, err error) {
	for {
		src, keyRef, h, found := m.be.First()
		if !found {
			return k, v, false, nil
		}
		var key []byte
		if src.ReadKey(keyRef, h, func(b []byte) error {
			key = append(key, b...)
			return nil
		}) != nil {
			continue // removed under us; retry
		}
		got := false
		rerr := src.ReadValue(h, func(b []byte) error {
			v = m.valSer.Deserialize(b)
			got = true
			return nil
		})
		if rerr != nil {
			continue // removed under us; retry
		}
		removed, rmErr := src.Remove(key)
		if rmErr != nil {
			return k, v, false, rmErr
		}
		if removed && got {
			return m.keySer.Deserialize(key), v, true, nil
		}
		// Lost the race with another poller; retry on the next first.
	}
}

// PollLast atomically removes and returns the greatest entry.
func (m *Map[K, V]) PollLast() (k K, v V, ok bool, err error) {
	for {
		src, keyRef, h, found := m.be.Last()
		if !found {
			return k, v, false, nil
		}
		var key []byte
		if src.ReadKey(keyRef, h, func(b []byte) error {
			key = append(key, b...)
			return nil
		}) != nil {
			continue // removed under us; retry
		}
		got := false
		rerr := src.ReadValue(h, func(b []byte) error {
			v = m.valSer.Deserialize(b)
			got = true
			return nil
		})
		if rerr != nil {
			continue
		}
		removed, rmErr := src.Remove(key)
		if rmErr != nil {
			return k, v, false, rmErr
		}
		if removed && got {
			return m.keySer.Deserialize(key), v, true, nil
		}
	}
}
