package oakmap

import (
	"bytes"
	"sync"
	"testing"
)

func bufferMap(t *testing.T) (*Map[uint64, []byte], ZeroCopyMap[uint64, []byte]) {
	t.Helper()
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	t.Cleanup(m.Close)
	return m, m.ZC()
}

func TestRBufferAccessors(t *testing.T) {
	_, zc := bufferMap(t)
	val := []byte{0, 0, 0, 0, 0, 0, 1, 42, 0xFF}
	zc.Put(7, val)
	buf := zc.Get(7)

	n, err := buf.Len()
	if err != nil || n != len(val) {
		t.Fatalf("Len = %d, %v", n, err)
	}
	b, err := buf.ByteAt(8)
	if err != nil || b != 0xFF {
		t.Fatalf("ByteAt(8) = %x, %v", b, err)
	}
	u, err := buf.Uint64At(0)
	if err != nil || u != 1<<8|42 {
		t.Fatalf("Uint64At(0) = %d, %v", u, err)
	}
	out, err := buf.AppendTo(make([]byte, 0, 16))
	if err != nil || !bytes.Equal(out, val) {
		t.Fatalf("AppendTo = %x, %v", out, err)
	}
	cp, err := buf.Bytes()
	if err != nil || !bytes.Equal(cp, val) {
		t.Fatalf("Bytes = %x, %v", cp, err)
	}
	// The copy is detached from the off-heap value.
	cp[0] = 0xAA
	fresh, _ := buf.Bytes()
	if fresh[0] == 0xAA {
		t.Fatal("Bytes returned an aliasing slice")
	}
}

func TestKeyBuffersDuringScan(t *testing.T) {
	_, zc := bufferMap(t)
	for i := uint64(0); i < 20; i++ {
		zc.Put(i, []byte{byte(i)})
	}
	var keys []uint64
	zc.Keys(nil, nil, func(k *OakRBuffer) bool {
		u, err := k.Uint64At(0)
		if err != nil {
			t.Fatalf("key read: %v", err)
		}
		keys = append(keys, u)
		return true
	})
	if len(keys) != 20 || keys[0] != 0 || keys[19] != 19 {
		t.Fatalf("keys = %v", keys)
	}
	count := 0
	zc.Values(nil, nil, func(v *OakRBuffer) bool {
		n, err := v.Len()
		if err != nil || n != 1 {
			t.Fatalf("value len = %d, %v", n, err)
		}
		count++
		return true
	})
	if count != 20 {
		t.Fatalf("values visited %d", count)
	}
}

func TestWBufferAccessors(t *testing.T) {
	_, zc := bufferMap(t)
	zc.Put(1, make([]byte, 16))
	ok, err := zc.ComputeIfPresent(1, func(w OakWBuffer) error {
		if w.Len() != 16 {
			t.Fatalf("WBuffer.Len = %d", w.Len())
		}
		w.PutUint64At(0, 7777)
		if w.Uint64At(0) != 7777 {
			t.Fatal("PutUint64At/Uint64At round trip")
		}
		if err := w.Set([]byte("abc")); err != nil {
			return err
		}
		if w.Len() != 3 {
			t.Fatalf("Len after Set = %d", w.Len())
		}
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("compute: %v %v", ok, err)
	}
	v, _ := zc.Get(1).Bytes()
	if string(v) != "abc" {
		t.Fatalf("value = %q", v)
	}
}

func TestComputeErrorAborts(t *testing.T) {
	_, zc := bufferMap(t)
	zc.Put(1, []byte("orig"))
	boom := bytes.ErrTooLarge // any sentinel
	_, err := zc.ComputeIfPresent(1, func(w OakWBuffer) error {
		return boom
	})
	if err != boom {
		t.Fatalf("compute error = %v; want propagated sentinel", err)
	}
	v, _ := zc.Get(1).Bytes()
	if string(v) != "orig" {
		t.Fatalf("value after failed compute = %q", v)
	}
}

func TestViewTracksResize(t *testing.T) {
	_, zc := bufferMap(t)
	zc.Put(1, []byte("aa"))
	view := zc.Get(1)
	// Grow the value through compute; the old view must observe the new
	// content (views read through, §2.2).
	zc.ComputeIfPresent(1, func(w OakWBuffer) error {
		return w.Set(bytes.Repeat([]byte{'z'}, 300))
	})
	n, err := view.Len()
	if err != nil || n != 300 {
		t.Fatalf("view Len after resize = %d, %v", n, err)
	}
	b, _ := view.ByteAt(299)
	if b != 'z' {
		t.Fatal("view content stale after resize")
	}
}

func TestConcurrentViewReadsDuringWrites(t *testing.T) {
	_, zc := bufferMap(t)
	zc.Put(1, make([]byte, 64))
	view := zc.Get(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer flips the whole buffer between all-zeros and all-ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		val := byte(0)
		for i := 0; i < 3000; i++ {
			val ^= 0xFF
			v := val
			zc.ComputeIfPresent(1, func(w OakWBuffer) error {
				b := w.Bytes()
				for j := range b {
					b[j] = v
				}
				return nil
			})
		}
		close(stop)
	}()
	// Readers must always see a consistent (uniform) buffer: Read holds
	// the value's read lock, so a torn write is a locking bug.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view.Read(func(b []byte) error {
					first := b[0]
					for _, c := range b {
						if c != first {
							t.Error("torn read: buffer not uniform")
							return nil
						}
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
}

func TestKeyReclaimDefaultAndOptOut(t *testing.T) {
	// Default policy: dead keys are reclaimed through the epoch domain
	// and KeyLeakBytes stays zero.
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	for i := uint64(0); i < 2000; i++ {
		zc.Put(i, make([]byte, 32))
	}
	for i := uint64(0); i < 2000; i++ {
		zc.Remove(i)
	}
	// Churn to force rebalances that collect dead keys.
	for round := 0; round < 100; round++ {
		for i := uint64(0); i < 50; i++ {
			zc.Put(i, make([]byte, 32))
		}
		for i := uint64(0); i < 50; i++ {
			zc.Remove(i)
		}
	}
	if leak := m.Stats().KeyLeakBytes; leak != 0 {
		t.Fatalf("KeyLeakBytes = %d with default key reclamation", leak)
	}
	// The ablation opt-out retains dead keys and accounts them instead.
	d := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20, DisableKeyReclaim: true})
	defer d.Close()
	dz := d.ZC()
	for i := uint64(0); i < 2000; i++ {
		dz.Put(i, make([]byte, 32))
	}
	for i := uint64(0); i < 2000; i++ {
		dz.Remove(i)
	}
	for round := 0; round < 100; round++ {
		for i := uint64(0); i < 50; i++ {
			dz.Put(i, make([]byte, 32))
		}
		for i := uint64(0); i < 50; i++ {
			dz.Remove(i)
		}
	}
	if leak := d.Stats().KeyLeakBytes; leak == 0 {
		t.Fatal("expected key-leak accounting with DisableKeyReclaim")
	}
}

func TestKeysValuesStream(t *testing.T) {
	_, zc := bufferMap(t)
	for i := uint64(0); i < 12; i++ {
		zc.Put(i, []byte{byte(i)})
	}
	var views []*OakRBuffer
	sum := uint64(0)
	zc.KeysStream(nil, nil, func(k *OakRBuffer) bool {
		views = append(views, k)
		u, _ := k.Uint64At(0)
		sum += u
		return true
	})
	if sum != 66 { // 0+1+...+11
		t.Fatalf("key sum = %d", sum)
	}
	for i := 1; i < len(views); i++ {
		if views[i] != views[0] {
			t.Fatal("KeysStream must reuse one view")
		}
	}
	total := 0
	zc.ValuesStream(nil, nil, func(v *OakRBuffer) bool {
		b, _ := v.ByteAt(0)
		total += int(b)
		return true
	})
	if total != 66 {
		t.Fatalf("value sum = %d", total)
	}
}
