package oakmap

import (
	"encoding/binary"

	"oakmap/internal/core"
)

// OakRBuffer is a read-only view of an off-heap key or value (§2.1). It
// is a lightweight on-heap facade: it holds no copy of the data. Views
// may be retained arbitrarily long and accessed from any goroutine; each
// accessor call is individually atomic (method-call granularity, §2.2).
// Both kinds of view return ErrConcurrentModification once the mapping
// has been deleted: value reads fail on the deleted bit, and key reads
// fail the same way rather than exposing key space that epoch-based
// reclamation may have recycled.
type OakRBuffer struct {
	m      *core.Map
	h      core.ValueHandle
	keyRef uint64 // non-zero for key buffers
	snap   []byte // non-nil for detached snapshots made by Copy
	// view, when non-nil, is a scope-bound borrowed slice the buffer
	// reads directly — the stream-scan key representation. Unlike snap it
	// is NOT owned: it aliases memory (a scan's pinned arena bytes or a
	// merge cursor's reused resume copy) that is only valid inside the
	// callback or until the next iterator step, exactly the lifetime the
	// stream API grants its views. Copy() detaches it into a real snap.
	view []byte
}

// Read runs f on the buffer's current bytes, atomically with respect to
// concurrent updates. f must not retain the slice: it aliases off-heap
// memory that may be reused after the call.
func (b *OakRBuffer) Read(f func([]byte) error) error {
	if b.snap != nil {
		return f(b.snap)
	}
	if b.view != nil {
		return f(b.view)
	}
	if b.keyRef != 0 {
		// Key view: read under an epoch pin, validated against the
		// mapping's value handle (a live handle proves the key has not
		// been retired by a rebalance).
		return b.m.ReadKey(b.keyRef, b.h, f)
	}
	return b.m.ReadValue(b.h, f)
}

// Len returns the buffer's current length in bytes.
func (b *OakRBuffer) Len() (int, error) {
	n := 0
	err := b.Read(func(p []byte) error { n = len(p); return nil })
	return n, err
}

// Bytes returns a copy of the buffer's contents.
func (b *OakRBuffer) Bytes() ([]byte, error) {
	var out []byte
	err := b.Read(func(p []byte) error {
		out = append(out, p...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Copy returns a detached snapshot of the buffer backed by on-heap
// memory. Unlike the view it was made from, the snapshot is valid
// forever: it no longer reads through to the live value, and it is the
// sanctioned way to keep data from a scope-bound view (a stream
// callback's key/value pair) past its callback — oak-vet's zcescape
// analyzer recognizes Copy results as safe to retain.
func (b *OakRBuffer) Copy() (*OakRBuffer, error) {
	if b.snap != nil {
		return b, nil // snapshots are immutable: sharing is fine
	}
	data, err := b.Bytes()
	if err != nil {
		return nil, err
	}
	if data == nil {
		data = []byte{} // an empty snapshot is still a snapshot
	}
	return &OakRBuffer{snap: data}, nil
}

// AppendTo appends the buffer's contents to dst, avoiding an allocation
// when dst has capacity.
func (b *OakRBuffer) AppendTo(dst []byte) ([]byte, error) {
	err := b.Read(func(p []byte) error {
		dst = append(dst, p...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// ByteAt returns the byte at offset off.
func (b *OakRBuffer) ByteAt(off int) (byte, error) {
	var v byte
	err := b.Read(func(p []byte) error { v = p[off]; return nil })
	return v, err
}

// Uint64At returns the big-endian uint64 at offset off.
func (b *OakRBuffer) Uint64At(off int) (uint64, error) {
	var v uint64
	err := b.Read(func(p []byte) error {
		v = binary.BigEndian.Uint64(p[off:])
		return nil
	})
	return v, err
}

// OakWBuffer is a writable view of a value, valid only inside an update
// lambda while the value's write lock is held (§2.2). It supports
// in-place mutation and resizing; resizes transparently move the value
// within the arena.
type OakWBuffer struct {
	w *core.WBuffer
}

// Bytes returns the value's writable contents. The slice is invalidated
// by Resize/Set.
func (b OakWBuffer) Bytes() []byte { return b.w.Bytes() }

// Len returns the value's current length.
func (b OakWBuffer) Len() int { return b.w.Len() }

// Resize changes the value's length, preserving the common prefix.
func (b OakWBuffer) Resize(n int) error { return b.w.Resize(n) }

// Set replaces the value's contents.
func (b OakWBuffer) Set(p []byte) error { return b.w.Set(p) }

// PutUint64At stores v big-endian at offset off.
func (b OakWBuffer) PutUint64At(off int, v uint64) {
	binary.BigEndian.PutUint64(b.w.Bytes()[off:], v)
}

// Uint64At loads the big-endian uint64 at offset off.
func (b OakWBuffer) Uint64At(off int) uint64 {
	return binary.BigEndian.Uint64(b.w.Bytes()[off:])
}

// ZeroCopyMap is Oak's zero-copy view (the paper's
// ZeroCopyConcurrentNavigableMap, Table 1). Obtain it with Map.ZC().
type ZeroCopyMap[K, V any] struct {
	m *Map[K, V]
}

// Get returns a read-only view of the value mapped to k, or nil if k is
// absent. The view reads through to the live value: concurrent in-place
// updates are visible, and reads of a deleted value fail with
// ErrConcurrentModification.
func (z ZeroCopyMap[K, V]) Get(k K) *OakRBuffer {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	c := z.m.be.ShardFor(*kb)
	h, ok := c.Get(*kb)
	if !ok {
		return nil
	}
	return &OakRBuffer{m: c, h: h}
}

// Put maps k to v, serializing v directly into off-heap memory. Unlike
// the legacy put it does not return the old value (avoiding a copy).
func (z ZeroCopyMap[K, V]) Put(k K, v V) error {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	return z.m.be.ShardFor(*kb).PutWriter(*kb, z.m.valueWriter(v))
}

// PutIfAbsent inserts k→v if absent, reporting whether it inserted.
func (z ZeroCopyMap[K, V]) PutIfAbsent(k K, v V) (bool, error) {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	return z.m.be.ShardFor(*kb).PutIfAbsentWriter(*kb, z.m.valueWriter(v))
}

// Remove deletes the mapping for k without returning the old value.
func (z ZeroCopyMap[K, V]) Remove(k K) error {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	_, err := z.m.be.ShardFor(*kb).Remove(*kb)
	return err
}

// Delete deletes the mapping for k and reports whether it was present —
// Remove with the presence bit, still without copying the old value out
// (the network DEL path wants the count but not the bytes).
func (z ZeroCopyMap[K, V]) Delete(k K) (bool, error) {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	return z.m.be.ShardFor(*kb).Remove(*kb)
}

// ComputeIfPresent atomically applies f to k's value in place. The
// lambda runs exactly once, under the value's write lock, and may resize
// the value. Returns false if k is absent.
func (z ZeroCopyMap[K, V]) ComputeIfPresent(k K, f func(OakWBuffer) error) (bool, error) {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	return z.m.be.ShardFor(*kb).ComputeIfPresent(*kb, func(w *core.WBuffer) error {
		return f(OakWBuffer{w})
	})
}

// PutIfAbsentComputeIfPresent inserts v if k is absent, otherwise
// atomically applies f to the present value in place — the paper's
// replacement for Java's non-atomic merge, used by Druid-style in-situ
// aggregation (§6).
func (z ZeroCopyMap[K, V]) PutIfAbsentComputeIfPresent(k K, v V, f func(OakWBuffer) error) error {
	kb := z.m.serializeKey(k)
	defer z.m.releaseKey(kb)
	return z.m.be.ShardFor(*kb).PutIfAbsentComputeIfPresentWriter(*kb, z.m.valueWriter(v), func(w *core.WBuffer) error {
		return f(OakWBuffer{w})
	})
}
