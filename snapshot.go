package oakmap

import (
	"sync/atomic"

	"oakmap/internal/core"
)

// Op is one operation in an atomic batch: a put of Key→Value, or — when
// Delete is set — a removal of Key (removing an absent key is a no-op).
type Op[K, V any] struct {
	Key    K
	Value  V // ignored when Delete is set
	Delete bool
}

// ApplyBatch applies ops atomically: every concurrent reader, scan and
// snapshot observes either all of the batch's effects or none of them —
// across shards too. Ops are deduplicated by key with the last
// occurrence winning, so a batch is a set of final states, not a replay
// log. An error (allocation failure) rolls the whole batch back.
//
// Atomicity is visibility-atomicity, not serializability against
// individual point writes: a plain Put racing the batch lands either
// entirely before or entirely after it on that key.
func (m *Map[K, V]) ApplyBatch(ops []Op[K, V]) error {
	if len(ops) == 0 {
		return nil
	}
	bops := make([]core.BatchOp, len(ops))
	for i, op := range ops {
		kb := make([]byte, m.keySer.SizeOf(op.Key))
		m.keySer.Serialize(op.Key, kb)
		bops[i].Key = kb
		if op.Delete {
			bops[i].Delete = true
		} else {
			bops[i].Val = m.serializeVal(op.Value)
		}
	}
	return m.be.ApplyBatch(bops)
}

// Snapshot is a read-only, point-in-time view of the map. It is frozen:
// concurrent puts, removes and batches after the snapshot's acquisition
// are invisible to it, and every read within it is mutually consistent
// (a cross-shard batch is either entirely visible or entirely not).
//
// Snapshots are cheap to take — no data is copied up front; overwritten
// and deleted values are retained copy-on-write only while a snapshot
// that can see them stays open. Close every snapshot (defer is the
// idiom; oak-vet's snaplife check enforces it), or the retained-version
// store and the reclaim horizon grow without bound.
//
// A Snapshot is safe for concurrent use; its iterators are not (one per
// goroutine).
type Snapshot[K, V any] struct {
	m      *Map[K, V]
	bs     beSnapshot
	closed atomic.Bool
}

// Snapshot acquires a frozen view of the map's current state. The
// acquisition stabilizes first: every write that the snapshot's version
// admits is complete before Snapshot returns, so the view never shifts
// underneath its reader.
func (m *Map[K, V]) Snapshot() *Snapshot[K, V] {
	return &Snapshot[K, V]{m: m, bs: m.be.Snapshot()}
}

// Close releases the snapshot, letting retained pre-images drain and
// the reclamation horizon advance. Idempotent; reads after Close are
// invalid.
func (s *Snapshot[K, V]) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.bs.Close()
	}
}

// Get returns a copy of the value mapped to k in the frozen view.
func (s *Snapshot[K, V]) Get(k K) (V, bool) {
	kb := s.m.serializeKey(k)
	defer s.m.releaseKey(kb)
	var out V
	b, ok := s.bs.Get(*kb, nil)
	if !ok {
		return out, false
	}
	return s.m.valSer.Deserialize(b), true
}

// Ascend calls f for each frozen mapping with from ≤ k < to in
// ascending order (nil bounds are open). Returning false stops the
// scan. Unlike live scans, the sequence is atomic: it is exactly the
// map's content at the snapshot's version.
func (s *Snapshot[K, V]) Ascend(from, to *K, f func(k K, v V) bool) {
	s.scan(from, to, false, f)
}

// Descend is Ascend in descending key order.
func (s *Snapshot[K, V]) Descend(from, to *K, f func(k K, v V) bool) {
	s.scan(from, to, true, f)
}

func (s *Snapshot[K, V]) scan(from, to *K, desc bool, f func(k K, v V) bool) {
	cur := s.bs.Cursor(s.m.boundBytes(from), s.m.boundBytes(to), desc)
	for {
		kb, vb, ok := cur.Next()
		if !ok {
			return
		}
		if !f(s.m.keySer.Deserialize(kb), s.m.valSer.Deserialize(vb)) {
			return
		}
	}
}

// SnapIterator is a pull-style scan over a snapshot's frozen view.
// Advance with Next; not safe for concurrent use.
type SnapIterator[K, V any] struct {
	m   *Map[K, V]
	cur beSnapCursor
}

// Iterator creates a pull iterator over the frozen view with
// from ≤ key < to (nil bounds open), ascending or descending. The
// snapshot must stay open for the iterator's lifetime.
func (s *Snapshot[K, V]) Iterator(from, to *K, descending bool) *SnapIterator[K, V] {
	return &SnapIterator[K, V]{
		m:   s.m,
		cur: s.bs.Cursor(s.m.boundBytes(from), s.m.boundBytes(to), descending),
	}
}

// Next returns the next frozen entry deserialized, or ok=false at the
// end.
func (it *SnapIterator[K, V]) Next() (k K, v V, ok bool) {
	kb, vb, ok := it.cur.Next()
	if !ok {
		return k, v, false
	}
	return it.m.keySer.Deserialize(kb), it.m.valSer.Deserialize(vb), true
}

// GetRaw resolves a pre-serialized key in the frozen view, appending
// the raw value bytes to dst — for layout-aware readers (the druid
// layer's row decoding) that bypass the value serializer.
func (s *Snapshot[K, V]) GetRaw(key, dst []byte) ([]byte, bool) {
	return s.bs.Get(key, dst)
}

// AscendRaw streams the frozen view over serialized bounds lo ≤ k < hi
// without deserializing: key and val are owned by the scan and valid
// only for the duration of the callback. This is the snapshot analogue
// of the zero-copy stream scan, for readers that decode value bytes
// themselves.
func (s *Snapshot[K, V]) AscendRaw(lo, hi []byte, yield func(key, val []byte) bool) {
	cur := s.bs.Cursor(lo, hi, false)
	for {
		kb, vb, ok := cur.Next()
		if !ok {
			return
		}
		if !yield(kb, vb) {
			return
		}
	}
}

// Stats reports the owning map's live internals (a snapshot freezes the
// mappings, not the allocator or reclamation counters). The MVCC fields
// include this snapshot while it is open.
func (s *Snapshot[K, V]) Stats() Stats { return s.m.Stats() }
