package oakmap

import (
	"math/rand/v2"
	"testing"
)

func TestIteratorAscending(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	const n = 300
	for _, i := range rand.Perm(n) {
		zc.Put(uint64(i), "v")
	}
	it := zc.Iterator(nil, nil, false, false)
	var got []uint64
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		u, err := k.Uint64At(0)
		if err != nil {
			t.Fatal(err)
		}
		if l, _ := v.Len(); l != 1 {
			t.Fatal("value view wrong")
		}
		got = append(got, u)
	}
	if len(got) != n {
		t.Fatalf("iterator yielded %d", len(got))
	}
	for i, k := range got {
		if k != uint64(i) {
			t.Fatalf("got[%d] = %d", i, k)
		}
	}
	// Exhausted iterators keep returning false.
	if _, _, ok := it.Next(); ok {
		t.Fatal("Next after exhaustion")
	}
}

func TestIteratorDescendingBounded(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	for i := 0; i < 200; i++ {
		zc.Put(uint64(i), "v")
	}
	lo, hi := uint64(50), uint64(150)
	it := zc.Iterator(&lo, &hi, true, true)
	want := uint64(149)
	count := 0
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		u, _ := k.Uint64At(0)
		if u != want {
			t.Fatalf("descending got %d; want %d", u, want)
		}
		want--
		count++
	}
	if count != 100 {
		t.Fatalf("visited %d; want 100", count)
	}
}

func TestIteratorStreamReusesViews(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	for i := 0; i < 10; i++ {
		zc.Put(uint64(i), "v")
	}
	it := zc.Iterator(nil, nil, false, true)
	k1, v1, _ := it.Next()
	k2, v2, _ := it.Next()
	if k1 != k2 || v1 != v2 {
		t.Fatal("stream iterator must reuse view objects")
	}
	it2 := zc.Iterator(nil, nil, false, false)
	k3, _, _ := it2.Next()
	k4, _, _ := it2.Next()
	if k3 == k4 {
		t.Fatal("set iterator must create fresh views")
	}
}

func TestIteratorNextEntry(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	for i := 0; i < 50; i++ {
		zc.Put(uint64(i), "val")
	}
	it := zc.Iterator(nil, nil, false, false)
	count := 0
	for {
		k, v, ok := it.NextEntry()
		if !ok {
			break
		}
		if v != "val" || k != uint64(count) {
			t.Fatalf("entry %d = (%d, %q)", count, k, v)
		}
		count++
	}
	if count != 50 {
		t.Fatalf("count = %d", count)
	}
}

// TestIteratorLazyUnderMutation: a half-advanced iterator keeps working
// while the map churns (including across rebalances).
func TestIteratorLazyUnderMutation(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	const n = 1000
	for i := 0; i < n; i += 2 { // even residents
		zc.Put(uint64(i), "r")
	}
	it := zc.Iterator(nil, nil, false, false)
	var got []uint64
	for i := 0; i < 100; i++ { // advance partway
		k, _, ok := it.Next()
		if !ok {
			t.Fatal("early exhaustion")
		}
		u, _ := k.Uint64At(0)
		got = append(got, u)
	}
	// Churn odd keys (never residents) to force splits everywhere.
	for i := 1; i < n; i += 2 {
		zc.Put(uint64(i), "x")
	}
	for i := 1; i < n; i += 2 {
		zc.Remove(uint64(i))
	}
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		u, _ := k.Uint64At(0)
		got = append(got, u)
	}
	// All residents seen exactly once, in order.
	seen := map[uint64]bool{}
	prev := int64(-1)
	for _, k := range got {
		if int64(k) <= prev {
			t.Fatalf("order violation at %d", k)
		}
		prev = int64(k)
		if k%2 == 0 {
			seen[k] = true
		}
	}
	for i := 0; i < n; i += 2 {
		if !seen[uint64(i)] {
			t.Fatalf("resident %d missed", i)
		}
	}
}
