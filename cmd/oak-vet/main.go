// oak-vet runs Oak's static safety analyzers over a module — the
// compile-time enforcement of the off-heap usage disciplines that
// DESIGN.md §5.1/§9 state in prose and the race/arenadebug CI legs
// check dynamically (DESIGN.md §10 catalogues the rules).
//
// Usage:
//
//	go run ./cmd/oak-vet ./...           # this repo, all analyzers
//	oak-vet -checks zcescape,pinbalance ./internal/...
//	oak-vet -list                        # describe the analyzers
//
// It works on any module that imports oakmap: packages are resolved
// with `go list` in the current directory, so run it from the target
// module's root. Exit status is 2 when any diagnostic is reported
// (mirroring go vet), 1 on operational errors, 0 when clean.
//
// Suppressions: a finding that reflects an intentional, reviewed
// contract (e.g. a helper that re-exposes a zero-copy slice under the
// same callback-scoped rule) is annotated at the site with
// //oak:zc-view, //oak:unsafe-ok, or //oak:allow <analyzer> — see
// internal/analysis for the grammar. Each annotation must carry a
// rationale in the surrounding comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"oakmap/internal/analysis"
	"oakmap/internal/analysis/faultpointid"
	"oakmap/internal/analysis/load"
	"oakmap/internal/analysis/lockguard"
	"oakmap/internal/analysis/lockorder"
	"oakmap/internal/analysis/pinbalance"
	"oakmap/internal/analysis/publishorder"
	"oakmap/internal/analysis/snaplife"
	"oakmap/internal/analysis/unsafespan"
	"oakmap/internal/analysis/zcescape"
)

var all = []*analysis.Analyzer{
	zcescape.Analyzer,
	pinbalance.Analyzer,
	unsafespan.Analyzer,
	faultpointid.Analyzer,
	snaplife.Analyzer,
	lockguard.Analyzer,
	lockorder.Analyzer,
	publishorder.Analyzer,
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json:
// one object per finding, newline-delimited inside a top-level array.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	strict := flag.Bool("strict-suppress", false, "also report //oak: suppressions that no longer match any diagnostic")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oak-vet [-checks a,b] [-json] [-strict-suppress] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "oak-vet: unknown analyzer %q\n", name)
				os.Exit(1)
			}
			analyzers = append(analyzers, a)
		}
	}

	units, err := load.Packages("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oak-vet: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.RunWithOptions(units, analyzers, analysis.Options{StrictSuppressions: *strict})
	if err != nil {
		fmt.Fprintf(os.Stderr, "oak-vet: %v\n", err)
		os.Exit(1)
	}
	fset := units[0].Fset
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			p := fset.Position(d.Pos)
			out = append(out, jsonDiag{Analyzer: d.Analyzer, File: p.Filename, Line: p.Line, Column: p.Column, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "oak-vet: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
