// Command druid-bench regenerates the paper's Druid case study (Fig. 5):
// single-thread ingestion of synthetic multi-dimensional tuples into the
// Oak-backed incremental index (I²-Oak) versus the legacy skiplist-backed
// one (I²-legacy), measuring throughput as the dataset grows (5a), under
// a shrinking RAM budget (5b), and the RAM overhead relative to the raw
// data volume (5c).
//
// Examples:
//
//	druid-bench -fig 5a -tuples 100000,200000,400000
//	druid-bench -fig 5b -tuples 400000 -memlimits 64,96,128,256
//	druid-bench -fig 5c
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"oakmap/internal/druid"
)

type row struct {
	scenario string
	index    string
	tuples   int
	kops     float64
	rawMB    float64
	heapMB   float64
	offMB    float64
	overhead float64 // (total - raw) / raw
}

func parseIntList(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("druid-bench: ")
	var (
		figFlag    = flag.String("fig", "5a", "figure: 5a, 5b, 5c, or all")
		tuplesFlag = flag.String("tuples", "50000,100000,200000,400000", "tuple counts (Fig. 5a/5c); the last is used for 5b")
		memsFlag   = flag.String("memlimits", "48,64,96,128,192", "RAM budgets in MiB (Fig. 5b)")
		perBucket  = flag.Int("perbucket", 4, "tuples per timestamp bucket (rollup density)")
		rollup     = flag.Bool("rollup", true, "rollup index (false = plain)")
		limitFlag  = flag.Int64("memlimit", 512<<20, "fixed RAM budget for Fig. 5a/5c")
	)
	flag.Parse()

	tuples := parseIntList(*tuplesFlag)
	var memLimits []int64
	for _, m := range parseIntList(*memsFlag) {
		memLimits = append(memLimits, int64(m)<<20)
	}

	var rows []row
	figs := []string{*figFlag}
	if *figFlag == "all" {
		figs = []string{"5a", "5b", "5c"}
	}
	for _, f := range figs {
		switch f {
		case "5a":
			for _, n := range tuples {
				rows = append(rows, runBoth(fmt.Sprintf("5a-%dk", n/1000), n, *perBucket, *rollup, *limitFlag)...)
			}
		case "5b":
			n := tuples[len(tuples)-1]
			for _, lim := range memLimits {
				rows = append(rows, runBoth(fmt.Sprintf("5b-%dMiB", lim>>20), n, *perBucket, *rollup, lim)...)
			}
		case "5c":
			for _, n := range tuples {
				rows = append(rows, runBoth(fmt.Sprintf("5c-%dk", n/1000), n, *perBucket, *rollup, *limitFlag)...)
			}
		default:
			log.Fatalf("unknown figure %q", f)
		}
	}

	fmt.Println()
	fmt.Printf("%-14s %-11s %9s %10s %9s %9s %9s %9s\n",
		"SCENARIO", "INDEX", "TUPLES", "KOPS/S", "RAW(MB)", "HEAP(MB)", "OFF(MB)", "OVERHEAD")
	for _, r := range rows {
		fmt.Printf("%-14s %-11s %9d %10.1f %9.1f %9.1f %9.1f %8.1f%%\n",
			r.scenario, r.index, r.tuples, r.kops, r.rawMB, r.heapMB, r.offMB, r.overhead*100)
	}
}

func runBoth(scenario string, n, perBucket int, rollup bool, memLimit int64) []row {
	schema := druid.DefaultSchema(rollup)
	out := []row{
		runOne(scenario, "I2-Oak", n, perBucket, memLimit, func() ingester {
			idx, err := druid.NewIndex(schema, &druid.IndexOptions{BlockSize: 8 << 20})
			if err != nil {
				log.Fatal(err)
			}
			return idx
		}),
		runOne(scenario, "I2-legacy", n, perBucket, memLimit, func() ingester {
			idx, err := druid.NewLegacyIndex(schema)
			if err != nil {
				log.Fatal(err)
			}
			return idx
		}),
	}
	return out
}

type ingester interface {
	Ingest(druid.Tuple) error
	Rows() int64
	RawBytes() int64
	StoredDataBytes() int64
	Cardinality() int
	Close()
}

func runOne(scenario, name string, n, perBucket int, memLimit int64, mk func() ingester) row {
	prev := debug.SetMemoryLimit(memLimit)
	defer debug.SetMemoryLimit(prev)
	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	idx := mk()
	gen := druid.NewTupleGen(42, perBucket, []int{1000, 100000}, 2)
	// The paper generates all input in advance to measure ingestion in
	// isolation (§6).
	input := make([]druid.Tuple, n)
	for i := range input {
		input[i] = gen.Next()
	}
	start := time.Now()
	for _, t := range input {
		if err := idx.Ingest(t); err != nil {
			log.Fatalf("%s ingest: %v", name, err)
		}
	}
	elapsed := time.Since(start)
	input = nil
	runtime.GC()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	r := row{
		scenario: scenario,
		index:    name,
		tuples:   n,
		kops:     float64(idx.Rows()) / elapsed.Seconds() / 1000,
		// "Raw data" is the inherent stored-data volume (keys + row
		// states); memory beyond it is overhead (Fig. 5c).
		rawMB: float64(idx.StoredDataBytes()) / (1 << 20),
	}
	// Go's HeapAlloc already includes the arena blocks (they are plain
	// pointer-free heap objects), so the heap delta IS the total RAM
	// used by the index. The off-heap column is informational: the share
	// of that RAM the GC treats as opaque.
	heapUsed := float64(msAfter.HeapAlloc) - float64(msBefore.HeapAlloc)
	if heapUsed < 0 {
		heapUsed = 0
	}
	r.heapMB = heapUsed / (1 << 20)
	if oak, ok := idx.(*druid.Index); ok {
		r.offMB = float64(oak.OffHeapBytes()) / (1 << 20)
	}
	if r.rawMB > 0 {
		r.overhead = (r.heapMB - r.rawMB) / r.rawMB
	}
	log.Printf("%-14s %-11s %8d tuples %9.1f Kops/s  card=%d", scenario, name,
		n, r.kops, idx.Cardinality())
	idx.Close()
	return r
}
