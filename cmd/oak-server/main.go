// Command oak-server serves an Oak map over TCP with a RESP2-subset
// protocol, so any Redis client (redis-cli, client libraries, or
// oak-stress -net) can drive the off-heap map across a socket.
//
//	oak-server -addr :6379 -shards 8 -metrics :9464
//	redis-cli -p 6379 SET hello world
//	oak-stress -net 127.0.0.1:6379 -workers 16 -zipf 1.2
//
// Supported commands: GET, SET, SETNX, DEL, EXISTS, MGET, MSET,
// SCAN cursor [COUNT n] [END hi] (ordered, cross-shard merged), DBSIZE,
// PING, INFO, SHUTDOWN, QUIT. Pipelining is first-class: replies are
// batched per pipeline and flushed in one write.
//
// On SIGTERM/SIGINT (or a SHUTDOWN command) the server drains
// gracefully: it stops accepting, finishes every in-flight pipeline,
// quiesces epoch reclamation, and prints the leak gate — KeyLeakBytes
// per shard, which a clean drain leaves at zero on every shard. The
// process exits non-zero if the gate fails, so deployment scripts and
// CI smokes can assert a leak-free lifecycle with the exit code alone.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oakmap"
	"oakmap/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oak-server: ")
	var (
		addr         = flag.String("addr", ":6379", "listen address")
		shards       = flag.Int("shards", 0, "hash-shard the map across N core maps (0 or 1 = plain)")
		chunkCap     = flag.Int("chunk", 0, "chunk capacity (0 = default 4096)")
		blockSize    = flag.Int("blocksize", 16<<20, "private block-pool block size in bytes (0 = shared 100MB pool)")
		reclaimH     = flag.Bool("reclaim-headers", false, "enable the epoch header-reclamation extension")
		maxConns     = flag.Int("maxconns", 1024, "max concurrently served connections")
		maxPipeline  = flag.Int("pipeline", 128, "max replies buffered before a forced flush")
		readTimeout  = flag.Duration("read-timeout", 0, "idle connection limit (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-flush slow-client limit")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight pipelines at shutdown")
		metrics      = flag.String("metrics", "", "serve Prometheus /metrics and expvar /debug/vars on this address")
	)
	flag.Parse()

	var tel *oakmap.Telemetry
	if *metrics != "" {
		tel = oakmap.NewTelemetry(nil)
	}
	m := oakmap.New[[]byte, []byte](oakmap.BytesSerializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{
			ChunkCapacity:  *chunkCap,
			BlockSize:      *blockSize,
			Shards:         *shards,
			ReclaimHeaders: *reclaimH,
			Telemetry:      tel,
		})
	defer m.Close()

	srv := server.New(m, server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		MaxPipeline:  *maxPipeline,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		Telemetry:    tel,
	})

	if *metrics != "" {
		tel.PublishExpvar("oak")
		mux := http.NewServeMux()
		mux.Handle("/metrics", tel.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		hsrv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("metrics server: %v", err)
			}
		}()
		defer hsrv.Close()
		log.Printf("serving /metrics and /debug/vars on %s", *metrics)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("serving RESP on %s (shards=%d maxconns=%d pipeline=%d)",
		*addr, m.NumShards(), *maxConns, *maxPipeline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("received %s, draining", s)
	case <-srv.ShutdownRequested():
		log.Printf("SHUTDOWN command received, draining")
	case err := <-serveErr:
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	ds := srv.Shutdown(ctx)

	log.Printf("drained: %d connections finished in-flight work, %d forced, %d commands served",
		ds.ConnsDrained, ds.ConnsForced, ds.Commands)
	log.Printf("leak gate: quiesced=%v", ds.Quiesced)
	for i, b := range ds.ShardKeyLeakBytes {
		log.Printf("  shard %d: KeyLeakBytes=%d", i, b)
	}
	if !ds.Clean() {
		fmt.Fprintln(os.Stderr, "oak-server: LEAK GATE FAILED")
		os.Exit(1)
	}
	log.Printf("leak gate clean: KeyLeakBytes==0 on every shard")
}
