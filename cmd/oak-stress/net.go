package main

// The -net mode points the soak at an oak-server over loopback (or any
// network) instead of an in-process map: same zipfian/uniform key
// generators, same resident invariant, but every operation crosses the
// RESP protocol as a pipelined batch. It measures what the wire costs
// relative to direct calls (EXPERIMENTS.md records both) and doubles as
// the CI smoke that a server under concurrent pipelined load keeps the
// global scan order and never loses a resident.
//
// The in-process compute/counter atomicity checks don't apply here —
// the protocol has no compute verb — so net mode checks what the wire
// can express: reply shape per command, strict global byte order across
// full SCAN passes, and resident presence.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	mrand "math/rand" // v1: home of rand.Zipf
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oakmap/internal/server"
)

type netConfig struct {
	addr     string
	duration time.Duration
	workers  int
	keys     int
	valSize  int
	zipf     float64
}

// netPipeline is the commands-per-batch depth workers drive. Deep enough
// to amortize syscalls and exercise the server's batched flushing, small
// enough that a batch drains well inside the write timeout.
const netPipeline = 32

// netKey encodes a key so that byte order equals numeric order — SCAN
// order checks then need no decoding beyond bytes.Compare.
func netKey(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func runNet(cfg netConfig) {
	log.Printf("net mode: driving %s (%d workers, pipeline %d, zipf=%g)",
		cfg.addr, cfg.workers, netPipeline, cfg.zipf)

	var viol violations
	var ops atomic.Int64
	var validations atomic.Int64

	// Residents: same invariant as in-process mode — keys 0, 10, 20, ...
	// are seeded once and never touched destructively; every full SCAN
	// pass must see each exactly once, in order.
	residents := cfg.keys / 10
	seed, err := server.Dial(cfg.addr, 5*time.Second)
	if err != nil {
		log.Fatalf("dial %s: %v", cfg.addr, err)
	}
	val := make([]byte, cfg.valSize)
	// Seed in pipelined batches, reading the replies batch-by-batch so
	// neither side's socket buffer has to absorb the whole keyspace.
	for base := 0; base < residents; base += netPipeline {
		n := netPipeline
		if base+n > residents {
			n = residents - base
		}
		for i := base; i < base+n; i++ {
			seed.Send([]byte("SET"), netKey(uint64(i*10)), val)
		}
		if err := seed.Flush(); err != nil {
			log.Fatalf("seed flush: %v", err)
		}
		for i := base; i < base+n; i++ {
			r, err := seed.Recv()
			if err != nil {
				log.Fatalf("seed resident %d: %v", i, err)
			}
			if !r.IsOK() {
				log.Fatalf("seed resident %d: %s", i, r)
			}
		}
	}
	seed.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(wseed uint64) {
			defer wg.Done()
			cl, err := server.Dial(cfg.addr, 5*time.Second)
			if err != nil {
				viol.reportf("worker dial: %v", err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewPCG(wseed, 0x57e55))
			var zg *mrand.Zipf
			if cfg.zipf > 1 {
				zg = mrand.NewZipf(mrand.New(mrand.NewSource(int64(wseed))),
					cfg.zipf, 1, uint64(cfg.keys-1))
			}
			key := func() []byte {
				var k uint64
				if zg != nil {
					k = zg.Uint64()
				} else {
					k = rng.Uint64() % uint64(cfg.keys)
				}
				if k%10 == 0 {
					k++ // never touch residents destructively
				}
				return netKey(k)
			}
			// want[i] records the reply check for slot i of the batch:
			// 's' = +OK, 'i' = integer, 'g' = bulk or nil, 'a' = array.
			want := make([]byte, 0, netPipeline)
			for {
				select {
				case <-stop:
					return
				default:
				}
				want = want[:0]
				for len(want) < netPipeline {
					switch rng.Uint64() % 10 {
					case 0, 1, 2:
						cl.Send([]byte("SET"), key(), val)
						want = append(want, 's')
					case 3:
						cl.Send([]byte("DEL"), key())
						want = append(want, 'i')
					case 4:
						cl.Send([]byte("EXISTS"), key(), key())
						want = append(want, 'i')
					case 5:
						cl.Send([]byte("MGET"), key(), key(), key(), key())
						want = append(want, 'a')
					default:
						cl.Send([]byte("GET"), key())
						want = append(want, 'g')
					}
				}
				if err := cl.Flush(); err != nil {
					viol.reportf("worker flush: %v", err)
					return
				}
				for _, w := range want {
					r, err := cl.Recv()
					if err != nil {
						viol.reportf("worker recv: %v", err)
						return
					}
					switch {
					case r.Kind == server.ReplyError:
						viol.reportf("command error reply: %s", r)
					case w == 's' && !r.IsOK():
						viol.reportf("SET reply not +OK: %s", r)
					case w == 'i' && r.Kind != server.ReplyInt:
						viol.reportf("integer reply expected, got %s", r)
					case w == 'g' && r.Kind != server.ReplyBulk && r.Kind != server.ReplyNil:
						viol.reportf("bulk-or-nil reply expected, got %s", r)
					case w == 'a' && r.Kind != server.ReplyArray:
						viol.reportf("array reply expected, got %s", r)
					}
				}
				ops.Add(netPipeline)
			}
		}(uint64(w + 1))
	}

	// Validator: full SCAN passes over the wire while the storm rages,
	// checking strict global byte order and resident presence — the same
	// invariants the in-process validator proves, through the protocol's
	// cursor pagination (and, with -shards on the server, through the
	// cross-shard merge).
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, err := server.Dial(cfg.addr, 5*time.Second)
		if err != nil {
			viol.reportf("validator dial: %v", err)
			return
		}
		defer cl.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			netValidate(cl, residents, &viol)
			validations.Add(1)
		}
	}()

	start := time.Now()
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	// Post-storm: one quiet SCAN pass so a racing page boundary can't be
	// blamed for a missing resident, then DBSIZE for the summary.
	cl, err := server.Dial(cfg.addr, 5*time.Second)
	var dbsize int64
	if err != nil {
		viol.reportf("final dial: %v", err)
	} else {
		netValidate(cl, residents, &viol)
		validations.Add(1)
		if r, err := cl.DoStrings("DBSIZE"); err == nil && r.Kind == server.ReplyInt {
			dbsize = r.Int
		}
		cl.Close()
	}

	verdict := "PASS"
	if viol.total() > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("%s: %d ops in %s (%.0f Kops/s over the wire), %d scan passes, %d violations\n",
		verdict, ops.Load(), elapsed.Round(time.Millisecond),
		float64(ops.Load())/elapsed.Seconds()/1000, validations.Load(), viol.total())
	fmt.Printf("  server=%s workers=%d pipeline=%d dbsize=%d residents=%d\n",
		cfg.addr, cfg.workers, netPipeline, dbsize, residents)
	if viol.total() > 0 {
		fmt.Printf("violations (%d total, first %d with context):\n", viol.total(), len(viol.msgs))
		for _, msg := range viol.msgs {
			fmt.Printf("  VIOLATION: %s\n", msg)
		}
		os.Exit(1)
	}
}

// netValidate runs one full keyspace pass via SCAN pagination: every
// page must be internally ordered and start strictly after the previous
// page's last key, and every resident must appear exactly once.
func netValidate(cl *server.Client, residents int, viol *violations) {
	cursor := []byte("0")
	var prev []byte
	first := true
	seenResidents := 0
	ordered := true
	for {
		r, err := cl.Do([]byte("SCAN"), cursor, []byte("COUNT"), []byte("512"))
		if err != nil {
			viol.reportf("validator scan: %v", err)
			return
		}
		if r.Kind != server.ReplyArray || len(r.Elems) != 2 ||
			r.Elems[0].Kind != server.ReplyBulk || r.Elems[1].Kind != server.ReplyArray {
			viol.reportf("validator scan: malformed reply %s", r)
			return
		}
		for _, el := range r.Elems[1].Elems {
			key := el.Str
			if !first && bytes.Compare(key, prev) <= 0 {
				viol.reportf("ORDER VIOLATION: key %x scanned after %x", key, prev)
				ordered = false
			}
			prev, first = key, false
			if len(key) == 8 {
				k := binary.BigEndian.Uint64(key)
				if k%10 == 0 && k < uint64(residents*10) {
					seenResidents++
				}
			}
		}
		cursor = r.Elems[0].Str
		if len(cursor) == 1 && cursor[0] == '0' {
			break
		}
	}
	if ordered && seenResidents != residents {
		viol.reportf("RESIDENT VIOLATION: saw %d of %d resident keys over the wire",
			seenResidents, residents)
	}
}
