// Command oak-stress soak-tests the map: concurrent workers apply a
// configurable operation mix against tracked "resident" keys while a
// validator repeatedly checks ordering, uniqueness, reachability, and
// the atomicity of in-place computes. Violations are collected with
// context and reported at shutdown; the process exits non-zero if any
// occurred. Use it to gain confidence on new hardware or after modifying
// the concurrency core.
//
//	oak-stress -duration 30s -workers 8 -keys 100000
//	oak-stress -reclaim-headers -chunk 128   # stress the epoch extension
//	oak-stress -faults -seed 7               # with fault injection armed
//	oak-stress -metrics :9090 -progress 5s   # live Prometheus /metrics + stderr summaries
//	oak-stress -shards 8 -zipf 1.2           # hash-sharded map under a skewed key mix
//	oak-stress -snapshots 2 -faults          # MVCC soak: frozen-view validators under churn
//
// With -shards N > 1 the map hash-partitions keys across N independent
// core maps (per-shard arena and epoch domain); validation scans then
// exercise the cross-shard k-way merge, and the shutdown summary breaks
// the leak accounting out per shard. -zipf s > 1 draws worker keys from
// a Zipf(s) distribution instead of uniform, concentrating the churn on
// a few hot keys — with sharding, on a few hot shards.
//
// With -metrics, a Prometheus text endpoint is served at /metrics and
// the expvar JSON snapshot at /debug/vars; -progress prints a periodic
// per-op latency table to stderr. Either flag enables the telemetry
// layer (op histograms, structural gauges, and the flight recorder,
// whose tail is dumped at shutdown).
//
// With -snapshots N > 0, N validator goroutines continuously open MVCC
// snapshots and check the frozen-view invariants: a snapshot's scan is
// ordered and sees every resident, its reads are stable (two reads of
// one key inside one snapshot agree even mid-churn), and the counter
// sum observed by successive snapshots of one validator never goes
// backwards. At shutdown the retained-version store must have drained
// to zero — an MVCC retention leak fails the run.
//
// With -faults, the named fault-injection points (internal/faultpoint)
// fire with seeded probability: allocation failures surface as tolerated
// errors, entry-link CAS and publish losses force the retry paths, and
// the rebalance/value pause points jitter goroutine scheduling. The
// per-point hit/fire counters are printed at shutdown.
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	mrand "math/rand" // v1: home of rand.Zipf
	"math/rand/v2"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oakmap"
	"oakmap/internal/arena"
	"oakmap/internal/faultpoint"
)

type stats struct {
	puts, gets, removes, computes, scans, validations atomic.Int64
	snapshots                                         atomic.Int64
	injected                                          atomic.Int64
}

// violations collects invariant failures with context instead of
// aborting on the first one: the run continues (surfacing cascades and
// later, different failures) and everything is reported at shutdown.
type violations struct {
	mu    sync.Mutex
	count int64
	msgs  []string // first maxMsgs, with context
}

const maxMsgs = 50

func (v *violations) reportf(format string, args ...any) {
	v.mu.Lock()
	v.count++
	if len(v.msgs) < maxMsgs {
		v.msgs = append(v.msgs, fmt.Sprintf(format, args...))
	}
	v.mu.Unlock()
}

func (v *violations) total() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.count
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oak-stress: ")
	var (
		duration  = flag.Duration("duration", 10*time.Second, "total run time")
		workers   = flag.Int("workers", 8, "concurrent worker goroutines")
		keys      = flag.Int("keys", 50000, "key range")
		valSize   = flag.Int("valsize", 128, "value size in bytes")
		chunkCap  = flag.Int("chunk", 512, "chunk capacity (small values stress rebalance)")
		reclaimH  = flag.Bool("reclaim-headers", false, "enable the epoch header-reclamation extension")
		noRecK    = flag.Bool("no-reclaim-keys", false, "disable the default epoch-based key reclamation (leaky baseline)")
		faults    = flag.Bool("faults", false, "arm the fault-injection points")
		faultProb = flag.Float64("fault-prob", 0.005, "per-hit firing probability for branch faults")
		seed      = flag.Uint64("seed", 1, "PRNG seed for fault firing (reproducibility)")
		metrics   = flag.String("metrics", "", "serve Prometheus /metrics and expvar /debug/vars on this address (enables telemetry)")
		progress  = flag.Duration("progress", 0, "print a periodic telemetry summary to stderr (enables telemetry)")
		shards    = flag.Int("shards", 0, "hash-shard the map across N core maps (0 or 1 = plain)")
		snapshots = flag.Int("snapshots", 0, "concurrent snapshot validators checking frozen-view invariants (0 = off)")
		zipf      = flag.Float64("zipf", 0, "draw worker keys from Zipf(s) instead of uniform (requires s > 1; 0 = uniform)")
		netAddr   = flag.String("net", "", "drive an oak-server at this address over RESP instead of an in-process map")
	)
	flag.Parse()
	if *zipf != 0 && *zipf <= 1 {
		log.Fatalf("-zipf requires an exponent > 1 (got %g)", *zipf)
	}
	if *netAddr != "" {
		runNet(netConfig{
			addr:     *netAddr,
			duration: *duration,
			workers:  *workers,
			keys:     *keys,
			valSize:  *valSize,
			zipf:     *zipf,
		})
		return
	}

	var tel *oakmap.Telemetry
	if *metrics != "" || *progress > 0 {
		tel = oakmap.NewTelemetry(nil)
	}

	m := oakmap.New[uint64, []byte](oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{
			ChunkCapacity:     *chunkCap,
			BlockSize:         16 << 20,
			ReclaimHeaders:    *reclaimH,
			DisableKeyReclaim: *noRecK,
			Telemetry:         tel,
			Shards:            *shards,
		})
	defer m.Close()
	zc := m.ZC()

	if *metrics != "" {
		tel.PublishExpvar("oak")
		mux := http.NewServeMux()
		mux.Handle("/metrics", tel.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		srv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("metrics server: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("serving /metrics and /debug/vars on %s", *metrics)
	}

	// Residents: keys 0, 10, 20, ... stay in the map for the whole run;
	// every validation pass must see each exactly once, in order.
	// Counter cells: keys 1_000_000_000+i hold 8-byte counters bumped
	// only via atomic computes; their sum is checked at the end.
	const counterBase = 1_000_000_000
	const counters = 16
	residents := *keys / 10
	for i := 0; i < residents; i++ {
		if err := zc.Put(uint64(i*10), make([]byte, *valSize)); err != nil {
			log.Fatalf("seed resident: %v", err) // setup failure, not a violation
		}
	}
	for i := 0; i < counters; i++ {
		if err := zc.Put(uint64(counterBase+i), make([]byte, 8)); err != nil {
			log.Fatalf("seed counter: %v", err)
		}
	}

	if *faults {
		armFaults(*faultProb, *seed)
		defer faultpoint.DisarmAll()
	}

	var st stats
	var viol violations
	var computeTotal atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// tolerate reports whether err is an expected consequence of armed
	// faults rather than a violation.
	tolerate := func(err error) bool {
		if err != nil && *faults && errors.Is(err, arena.ErrInjected) {
			st.injected.Add(1)
			return true
		}
		return false
	}

	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(wseed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(wseed, 0x57e55))
			// Zipf lives in math/rand v1; each worker owns its generator
			// (not safe for concurrent use).
			var zg *mrand.Zipf
			if *zipf > 1 {
				zg = mrand.NewZipf(mrand.New(mrand.NewSource(int64(wseed))),
					*zipf, 1, uint64(*keys-1))
			}
			val := make([]byte, *valSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var k uint64
				if zg != nil {
					k = zg.Uint64()
				} else {
					k = rng.Uint64() % uint64(*keys)
				}
				if k%10 == 0 {
					k++ // never touch residents destructively
				}
				switch rng.Uint64() % 10 {
				case 0, 1, 2:
					if err := zc.Put(k, val); err != nil && !tolerate(err) {
						viol.reportf("put(%d): %v", k, err)
					}
					st.puts.Add(1)
				case 3:
					if err := zc.Remove(k); err != nil && !tolerate(err) {
						viol.reportf("remove(%d): %v", k, err)
					}
					st.removes.Add(1)
				case 4:
					c := uint64(counterBase + int(rng.Uint64()%counters))
					ok, err := zc.ComputeIfPresent(c, func(wb oakmap.OakWBuffer) error {
						wb.PutUint64At(0, wb.Uint64At(0)+1)
						return nil
					})
					switch {
					case err != nil && !tolerate(err):
						viol.reportf("compute(%d): %v", c, err)
					case err == nil && !ok:
						viol.reportf("counter %d vanished (compute found no mapping)", c)
					case err == nil:
						computeTotal.Add(1)
					}
					st.computes.Add(1)
				case 5:
					n := 0
					zc.AscendStream(&k, nil, func(kb, vb *oakmap.OakRBuffer) bool {
						n++
						return n < 200
					})
					st.scans.Add(1)
				case 6:
					n := 0
					zc.DescendStream(nil, &k, func(kb, vb *oakmap.OakRBuffer) bool {
						n++
						return n < 200
					})
					st.scans.Add(1)
				default:
					if buf := zc.Get(k); buf != nil {
						buf.Read(func([]byte) error { return nil })
					}
					st.gets.Add(1)
				}
			}
		}(uint64(w + 1))
	}

	// Validator: full-scan invariants while the storm rages.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			validate(zc, residents, &viol)
			st.validations.Add(1)
		}
	}()

	// Snapshot validators: each continuously freezes a view and checks
	// the MVCC contract against it while the storm rages.
	for w := 0; w < *snapshots; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSum := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum, ok := snapValidate(m, residents, counters, counterBase, &viol)
				if ok {
					// Counters only grow, and a later snapshot's version is
					// never older: the observed sum must be monotone per
					// validator.
					if lastSum >= 0 && sum < lastSum {
						viol.reportf("SNAPSHOT MONOTONICITY VIOLATION: counter sum went from %d back to %d",
							lastSum, sum)
					}
					lastSum = sum
				}
				st.snapshots.Add(1)
			}
		}()
	}

	if *progress > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					s := m.Stats()
					log.Printf("len=%d chunks=%d rebalances=%d epoch=%d limbo=%d/%dB frag=%.3f",
						s.Len, s.Chunks, s.Rebalances, s.Epoch, s.LimboItems, s.LimboBytes, s.Fragmentation)
					if t := tel.Summary(); t != "" {
						fmt.Fprint(os.Stderr, t)
					}
				}
			}
		}()
	}

	start := time.Now()
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	faultpoint.DisarmAll() // quiesce injection before the final checks

	// Final check: the counters must hold exactly the computes applied.
	var sum int64
	for i := 0; i < counters; i++ {
		buf := zc.Get(uint64(counterBase + i))
		if buf == nil {
			viol.reportf("counter %d missing at shutdown", i)
			continue
		}
		v, err := buf.Uint64At(0)
		if err != nil {
			viol.reportf("counter %d read at shutdown: %v", i, err)
			continue
		}
		sum += int64(v)
	}
	if sum != computeTotal.Load() {
		viol.reportf("ATOMICITY VIOLATION: counters sum to %d, expected %d",
			sum, computeTotal.Load())
	}

	// With every snapshot closed, the retained-version store must be
	// empty: anything left is an MVCC retention leak.
	if *snapshots > 0 {
		if ms := m.Stats(); ms.OpenSnapshots != 0 || ms.RetainedBytes != 0 || ms.RetainedSpans != 0 {
			viol.reportf("SNAPSHOT LEAK: open=%d retained=%dB in %d spans after all snapshots closed",
				ms.OpenSnapshots, ms.RetainedBytes, ms.RetainedSpans)
		}
	}

	s := m.Stats()
	totalOps := st.puts.Load() + st.gets.Load() + st.removes.Load() +
		st.computes.Load() + st.scans.Load()
	verdict := "PASS"
	if viol.total() > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("%s: %d ops in %s (%.0f Kops/s), %d validations, %d violations\n",
		verdict, totalOps, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds()/1000, st.validations.Load(), viol.total())
	fmt.Printf("  puts=%d gets=%d removes=%d computes=%d scans=%d injected-errors=%d\n",
		st.puts.Load(), st.gets.Load(), st.removes.Load(),
		st.computes.Load(), st.scans.Load(), st.injected.Load())
	if *snapshots > 0 {
		fmt.Printf("  snapshots=%d retained-now=%dB/%d-spans open-now=%d\n",
			st.snapshots.Load(), s.RetainedBytes, s.RetainedSpans, s.OpenSnapshots)
	}
	fmt.Printf("  len=%d chunks=%d rebalances=%d headers=%d footprint=%.1fMB free-spans=%d frag=%.3f\n",
		s.Len, s.Chunks, s.Rebalances, s.HeaderCount, float64(s.Footprint)/(1<<20),
		s.FreeSpans, s.Fragmentation)
	fmt.Printf("  epoch=%d pinned=%d limbo-items=%d limbo-bytes=%d key-leak=%d\n",
		s.Epoch, s.PinnedReaders, s.LimboItems, s.LimboBytes, s.KeyLeakBytes)
	if s.Shards > 1 {
		fmt.Printf("  per-shard (len/key-leak/limbo-bytes/rebalances):")
		for i, ss := range m.ShardStats() {
			fmt.Printf(" %d=%d/%d/%d/%d", i, ss.Len, ss.KeyLeakBytes, ss.LimboBytes, ss.Rebalances)
		}
		fmt.Println()
	}
	if *faults {
		printFaultCounters()
	}
	if tel != nil {
		fmt.Printf("  op latency (sampled):\n%s", tel.Summary())
		evs := tel.DumpEvents()
		const tail = 10
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Printf("  flight recorder (last %d of %d events):\n", len(evs), tel.EventCount())
		for _, ev := range evs {
			fmt.Printf("    %s\n", ev)
		}
	}
	if viol.total() > 0 {
		fmt.Printf("violations (%d total, first %d with context):\n", viol.total(), len(viol.msgs))
		for _, msg := range viol.msgs {
			fmt.Printf("  VIOLATION: %s\n", msg)
		}
		os.Exit(1)
	}
}

// armFaults installs seeded probabilistic hooks on the branch faults and
// scheduling-jitter hooks on the pause points.
func armFaults(prob float64, seed uint64) {
	// link-cas and publish-fail divert retry loops: at probability 1 a
	// put would retry forever and the run could never drain. Clamp so
	// the loops always converge.
	retryProb := prob
	if retryProb > 0.9 {
		retryProb = 0.9
		log.Printf("clamping -fault-prob to %.2f for retry-loop faults", retryProb)
	}
	branch := map[string]float64{
		"arena/alloc-fail":   prob / 5, // errors surface to callers: keep rare
		"chunk/link-cas":     retryProb,
		"chunk/publish-fail": retryProb,
	}
	i := uint64(0)
	for name, p := range branch {
		i++
		if err := faultpoint.Arm(name, faultpoint.WithProb(p, seed+i)); err != nil {
			log.Fatalf("arm %s: %v", name, err)
		}
	}
	// Sparse scheduling jitter: every Gosched donates a scheduler quantum
	// to whoever is runnable (on GOMAXPROCS=1, the whole quantum), so keep
	// it rare enough that workers still make progress.
	jitter := faultpoint.Hook{Decide: func(hit int64) bool {
		if hit%64 == 0 {
			runtime.Gosched()
		}
		return false
	}}
	for _, name := range []string{
		"arena/freelist-scan", "arena/coalesce", "arena/class-migrate",
		"core/rebalance-freeze", "core/rebalance-split", "core/rebalance-index",
		"core/header-lock", "core/deleted-bit", "core/put-race",
		"epoch/advance", "epoch/drain",
		"shard/route", "shard/scan-rotate",
		"mvcc/retain", "mvcc/horizon",
	} {
		if err := faultpoint.Arm(name, jitter); err != nil {
			log.Fatalf("arm %s: %v", name, err)
		}
	}
}

func printFaultCounters() {
	cs := faultpoint.Counters()
	names := make([]string, 0, len(cs))
	for n := range cs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("  fault points (hits/fires):")
	for _, n := range names {
		c := cs[n]
		if c.Hits > 0 {
			fmt.Printf(" %s=%d/%d", n, c.Hits, c.Fires)
		}
	}
	fmt.Println()
}

// snapValidate freezes one view and checks the MVCC contract inside
// it: the frozen scan is ordered and complete over the residents, and
// two reads of one counter within the snapshot agree byte-for-byte no
// matter what the writers are doing. Returns the frozen counter sum
// and whether it is trustworthy for the caller's monotonicity check.
func snapValidate(m *oakmap.Map[uint64, []byte], residents, counters, counterBase int, viol *violations) (int64, bool) {
	sn := m.Snapshot()
	defer sn.Close()

	var prev uint64
	first := true
	seenResidents := 0
	ordered := true
	sn.Ascend(nil, nil, func(k uint64, _ []byte) bool {
		if !first && k <= prev {
			viol.reportf("SNAPSHOT ORDER VIOLATION: key %d scanned after %d", k, prev)
			ordered = false
			return false
		}
		prev, first = k, false
		if k%10 == 0 && k < uint64(residents*10) {
			seenResidents++
		}
		return true
	})
	if ordered && seenResidents != residents {
		viol.reportf("SNAPSHOT RESIDENT VIOLATION: frozen view saw %d of %d residents",
			seenResidents, residents)
	}

	var sum int64
	stable := ordered
	for i := 0; i < counters; i++ {
		k := uint64(counterBase + i)
		v1, ok1 := sn.Get(k)
		v2, ok2 := sn.Get(k)
		switch {
		case ok1 != ok2 || (ok1 && !bytes.Equal(v1, v2)):
			viol.reportf("SNAPSHOT STABILITY VIOLATION: counter %d changed within one frozen view", i)
			stable = false
		case !ok1:
			viol.reportf("SNAPSHOT RESIDENT VIOLATION: counter %d missing from frozen view", i)
			stable = false
		default:
			sum += int64(binary.BigEndian.Uint64(v1))
		}
	}
	return sum, stable
}

// validate runs one full-scan invariant pass.
func validate(zc oakmap.ZeroCopyMap[uint64, []byte], residents int, viol *violations) {
	var prev uint64
	first := true
	seenResidents := 0
	var kb [8]byte
	ordered := true
	zc.AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		k.Read(func(b []byte) error { copy(kb[:], b); return nil })
		key := binary.BigEndian.Uint64(kb[:])
		if !first && key <= prev {
			viol.reportf("ORDER VIOLATION: key %d scanned after %d", key, prev)
			ordered = false
			return false
		}
		prev, first = key, false
		if key%10 == 0 && key < uint64(residents*10) {
			seenResidents++
		}
		return true
	})
	if ordered && seenResidents != residents {
		viol.reportf("RESIDENT VIOLATION: saw %d of %d resident keys (last key %d)",
			seenResidents, residents, prev)
	}
}
