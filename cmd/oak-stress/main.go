// Command oak-stress soak-tests the map: concurrent workers apply a
// configurable operation mix against tracked "resident" keys while a
// validator repeatedly checks ordering, uniqueness, reachability, and
// the atomicity of in-place computes. It exits non-zero on the first
// violation. Use it to gain confidence on new hardware or after
// modifying the concurrency core.
//
//	oak-stress -duration 30s -workers 8 -keys 100000
//	oak-stress -reclaim-headers -chunk 128   # stress the epoch extension
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oakmap"
)

type stats struct {
	puts, gets, removes, computes, scans, validations atomic.Int64
	violations                                        atomic.Int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oak-stress: ")
	var (
		duration = flag.Duration("duration", 10*time.Second, "total run time")
		workers  = flag.Int("workers", 8, "concurrent worker goroutines")
		keys     = flag.Int("keys", 50000, "key range")
		valSize  = flag.Int("valsize", 128, "value size in bytes")
		chunkCap = flag.Int("chunk", 512, "chunk capacity (small values stress rebalance)")
		reclaimH = flag.Bool("reclaim-headers", false, "enable the epoch header-reclamation extension")
		reclaimK = flag.Bool("reclaim-keys", false, "enable off-heap key reclamation (requires no retained key views)")
	)
	flag.Parse()

	m := oakmap.New[uint64, []byte](oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{
			ChunkCapacity:  *chunkCap,
			BlockSize:      16 << 20,
			ReclaimHeaders: *reclaimH,
			ReclaimKeys:    *reclaimK,
		})
	defer m.Close()
	zc := m.ZC()

	// Residents: keys 0, 10, 20, ... stay in the map for the whole run;
	// every validation pass must see each exactly once, in order.
	// Counter cells: keys 1_000_000_000+i hold 8-byte counters bumped
	// only via atomic computes; their sum is checked at the end.
	const counterBase = 1_000_000_000
	const counters = 16
	residents := *keys / 10
	for i := 0; i < residents; i++ {
		if err := zc.Put(uint64(i*10), make([]byte, *valSize)); err != nil {
			log.Fatalf("seed resident: %v", err)
		}
	}
	for i := 0; i < counters; i++ {
		if err := zc.Put(uint64(counterBase+i), make([]byte, 8)); err != nil {
			log.Fatalf("seed counter: %v", err)
		}
	}

	var st stats
	var computeTotal atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0x57e55))
			val := make([]byte, *valSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64() % uint64(*keys)
				if k%10 == 0 {
					k++ // never touch residents destructively
				}
				switch rng.Uint64() % 10 {
				case 0, 1, 2:
					if err := zc.Put(k, val); err != nil {
						log.Fatalf("put: %v", err)
					}
					st.puts.Add(1)
				case 3:
					if err := zc.Remove(k); err != nil {
						log.Fatalf("remove: %v", err)
					}
					st.removes.Add(1)
				case 4:
					c := uint64(counterBase + int(rng.Uint64()%counters))
					ok, err := zc.ComputeIfPresent(c, func(wb oakmap.OakWBuffer) error {
						wb.PutUint64At(0, wb.Uint64At(0)+1)
						return nil
					})
					if err != nil {
						log.Fatalf("compute: %v", err)
					}
					if !ok {
						st.violations.Add(1)
						log.Fatalf("counter %d vanished", c)
					}
					computeTotal.Add(1)
					st.computes.Add(1)
				case 5:
					n := 0
					zc.AscendStream(&k, nil, func(kb, vb *oakmap.OakRBuffer) bool {
						n++
						return n < 200
					})
					st.scans.Add(1)
				case 6:
					n := 0
					zc.DescendStream(nil, &k, func(kb, vb *oakmap.OakRBuffer) bool {
						n++
						return n < 200
					})
					st.scans.Add(1)
				default:
					if buf := zc.Get(k); buf != nil {
						buf.Read(func([]byte) error { return nil })
					}
					st.gets.Add(1)
				}
			}
		}(uint64(w + 1))
	}

	// Validator: full-scan invariants while the storm rages.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			validate(m, zc, residents, &st)
			st.validations.Add(1)
		}
	}()

	start := time.Now()
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	// Final check: the counters must hold exactly the computes applied.
	var sum int64
	for i := 0; i < counters; i++ {
		buf := zc.Get(uint64(counterBase + i))
		if buf == nil {
			log.Fatalf("counter %d missing at shutdown", i)
		}
		v, err := buf.Uint64At(0)
		if err != nil {
			log.Fatalf("counter read: %v", err)
		}
		sum += int64(v)
	}
	if sum != computeTotal.Load() {
		log.Fatalf("ATOMICITY VIOLATION: counters sum to %d, expected %d",
			sum, computeTotal.Load())
	}

	s := m.Stats()
	totalOps := st.puts.Load() + st.gets.Load() + st.removes.Load() +
		st.computes.Load() + st.scans.Load()
	fmt.Printf("PASS: %d ops in %s (%.0f Kops/s), %d validations, 0 violations\n",
		totalOps, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds()/1000, st.validations.Load())
	fmt.Printf("  puts=%d gets=%d removes=%d computes=%d scans=%d\n",
		st.puts.Load(), st.gets.Load(), st.removes.Load(),
		st.computes.Load(), st.scans.Load())
	fmt.Printf("  len=%d chunks=%d rebalances=%d headers=%d footprint=%.1fMB\n",
		s.Len, s.Chunks, s.Rebalances, s.HeaderCount, float64(s.Footprint)/(1<<20))
	if st.violations.Load() > 0 {
		os.Exit(1)
	}
}

// validate runs one full-scan invariant pass.
func validate(m *oakmap.Map[uint64, []byte], zc oakmap.ZeroCopyMap[uint64, []byte],
	residents int, st *stats) {
	var prev uint64
	first := true
	seenResidents := 0
	var kb [8]byte
	zc.AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		k.Read(func(b []byte) error { copy(kb[:], b); return nil })
		key := binary.BigEndian.Uint64(kb[:])
		if !first && key <= prev {
			st.violations.Add(1)
			log.Fatalf("ORDER VIOLATION: %d after %d", key, prev)
		}
		prev, first = key, false
		if key%10 == 0 && key < uint64(residents*10) {
			seenResidents++
		}
		return true
	})
	if seenResidents != residents {
		st.violations.Add(1)
		log.Fatalf("RESIDENT VIOLATION: saw %d of %d resident keys",
			seenResidents, residents)
	}
}
