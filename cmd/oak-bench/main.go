// Command oak-bench regenerates the paper's synthetic evaluation
// (Figs. 3 and 4) with the synchrobench-equivalent harness: it runs the
// compared solutions — Oak (ZC and legacy APIs), SkipList-OnHeap, and
// SkipList-OffHeap — over the paper's workloads and prints both a
// human-readable table and the artifact's summary.csv layout.
//
// Scaled-down defaults finish in minutes on a laptop; raise -size,
// -duration and -threads to approach the paper's AWS configuration.
//
// Examples:
//
//	oak-bench -fig 4a -threads 1,2,4,8 -duration 2s
//	oak-bench -fig 3a -memlimit 268435456
//	oak-bench -fig all -out summary.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"oakmap"
	"oakmap/internal/arena"
	"oakmap/internal/bench"
)

type options struct {
	fig        string
	threads    []int
	size       int
	keySize    int
	valueSize  int
	duration   time.Duration
	memLimit   int64
	sizes      []int
	memLimits  []int64
	out        string
	blockSize  int
	iterations int
	zipf       float64
	btree      bool
	latency    bool
	tel        *oakmap.Telemetry
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oak-bench: ")
	var (
		figFlag       = flag.String("fig", "4a", "figure to reproduce: 3a, 3b, 4a, 4b, 4c, 4d, 4e, 4f, or all")
		threadsFlag   = flag.String("threads", "1,2,4,8", "comma-separated worker thread counts (Fig. 4)")
		sizeFlag      = flag.Int("size", 100000, "key range (paper: 10M)")
		keySizeFlag   = flag.Int("keysize", 100, "serialized key size in bytes")
		valueSizeFlag = flag.Int("valuesize", 1024, "serialized value size in bytes")
		durationFlag  = flag.Duration("duration", 2*time.Second, "sustained-stage duration per data point (paper: 30s)")
		memLimitFlag  = flag.Int64("memlimit", 512<<20, "Go soft memory limit in bytes for Fig. 3 (stand-in for -Xmx)")
		sizesFlag     = flag.String("sizes", "25000,50000,100000,200000", "dataset sizes for Fig. 3a")
		memsFlag      = flag.String("memlimits", "64,96,128,192,256,384", "RAM budgets in MiB for Fig. 3b")
		outFlag       = flag.String("out", "", "also write summary.csv to this path")
		blockFlag     = flag.Int("blocksize", 8<<20, "off-heap block size in bytes (paper: 100MB)")
		iterFlag      = flag.Int("iterations", 1, "median-of-N iterations per data point (artifact: 3)")
		btreeFlag     = flag.Bool("btree", false, "include the BTree-OffHeap (MapDB stand-in) baseline")
		plotFlag      = flag.String("plotdata", "", "write per-scenario gnuplot .dat files to this directory")
		latencyFlag   = flag.Bool("latency", false, "sample op latencies and report P50/P99/P99.9/max (Fig. 4 scenarios)")
		zipfFlag      = flag.Float64("zipf", 0, "Zipf skew for key sampling (>1 enables; 0 = uniform)")
		telFlag       = flag.Bool("telemetry", false, "attach the telemetry layer to the Oak targets and print its op-latency summary at exit")
	)
	flag.Parse()

	threads, err := parseIntList(*threadsFlag)
	if err != nil {
		log.Fatalf("bad -threads: %v", err)
	}
	sizes, err := parseIntList(*sizesFlag)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}
	memsMiB, err := parseIntList(*memsFlag)
	if err != nil {
		log.Fatalf("bad -memlimits: %v", err)
	}
	opt := options{
		fig: *figFlag, threads: threads, size: *sizeFlag,
		keySize: *keySizeFlag, valueSize: *valueSizeFlag,
		duration: *durationFlag, memLimit: *memLimitFlag,
		sizes: sizes, out: *outFlag, blockSize: *blockFlag,
		iterations: *iterFlag, zipf: *zipfFlag, btree: *btreeFlag,
		latency: *latencyFlag,
	}
	if *telFlag {
		opt.tel = oakmap.NewTelemetry(nil)
	}
	for _, m := range memsMiB {
		opt.memLimits = append(opt.memLimits, int64(m)<<20)
	}

	var results []bench.Result
	figs := []string{opt.fig}
	if opt.fig == "all" {
		figs = []string{"3a", "3b", "4a", "4b", "4c", "4d", "4e", "4f"}
	}
	for _, f := range figs {
		switch f {
		case "3a":
			results = append(results, fig3a(opt)...)
		case "3b":
			results = append(results, fig3b(opt)...)
		case "4a", "4b", "4c", "4d", "4e", "4f":
			results = append(results, fig4(opt, f)...)
		default:
			log.Fatalf("unknown figure %q", f)
		}
	}

	fmt.Println()
	if err := bench.WriteTable(os.Stdout, results); err != nil {
		log.Fatal(err)
	}
	if opt.out != "" {
		fd, err := os.Create(opt.out)
		if err != nil {
			log.Fatal(err)
		}
		defer fd.Close()
		if err := bench.WriteCSV(fd, results,
			fmt.Sprintf("%dm", opt.memLimit>>20), "shared-pool"); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", opt.out)
	}
	if *plotFlag != "" {
		if err := bench.WritePlotData(*plotFlag, results); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote plot data to %s/", *plotFlag)
	}
	if opt.tel != nil {
		// Aggregated across every Oak target the sweep constructed; the
		// summary separates op classes, not targets.
		fmt.Printf("\ntelemetry op latency (sampled, all Oak targets):\n%s", opt.tel.Summary())
		fmt.Printf("flight recorder events: %d\n", opt.tel.EventCount())
	}
	_ = bench.Sink()
}

// newTargets builds one fresh instance of each compared solution. Fresh
// pools per target keep Fig. 3's memory accounting honest.
func newTargets(opt options, includeCopy bool) []bench.Target {
	oakOpts := &oakmap.Options{BlockSize: opt.blockSize, Telemetry: opt.tel}
	ts := []bench.Target{
		bench.NewOak(oakOpts, false),
	}
	if includeCopy {
		ts = append(ts, bench.NewOak(oakOpts, true))
	}
	ts = append(ts,
		bench.NewOnHeap(),
		bench.NewOffHeap(arena.NewPool(opt.blockSize, 0)),
	)
	if opt.btree {
		ts = append(ts, bench.NewBTree(arena.NewPool(opt.blockSize, 0)))
	}
	return ts
}

func baseConfig(opt options) bench.Config {
	return bench.Config{
		KeyRange:      opt.size,
		KeySize:       opt.keySize,
		ValueSize:     opt.valueSize,
		Duration:      opt.duration,
		Seed:          uint64(time.Now().UnixNano()),
		ZipfS:         opt.zipf,
		SampleLatency: opt.latency,
	}
}

// fig3a: single-thread ingestion throughput as the dataset grows under a
// fixed RAM budget.
func fig3a(opt options) []bench.Result {
	var out []bench.Result
	for _, size := range opt.sizes {
		cfg := baseConfig(opt)
		cfg.KeyRange = size
		cfg.WarmFraction = 1.0 // Fig. 3 ingests the whole dataset
		for _, t := range newTargets(opt, false) {
			var r bench.Result
			bench.WithMemoryLimit(opt.memLimit, func() {
				runtime.GC()
				r = bench.Ingest(t, cfg)
			})
			r.Scenario = fmt.Sprintf("3a-ingest-%dk", size/1000)
			log.Printf("%-22s %-18s %8.1f Kops/s (heap %.0fMB, offheap %.0fMB, %d GCs)",
				r.Scenario, r.Target, r.KopsPerSec,
				float64(r.HeapBytes)/(1<<20), float64(r.OffHeapBytes)/(1<<20), r.NumGC)
			out = append(out, r)
			t.Close()
		}
	}
	return out
}

// fig3b: single-thread ingestion of a fixed dataset under shrinking RAM.
func fig3b(opt options) []bench.Result {
	var out []bench.Result
	for _, limit := range opt.memLimits {
		cfg := baseConfig(opt)
		cfg.WarmFraction = 1.0
		for _, t := range newTargets(opt, false) {
			var r bench.Result
			bench.WithMemoryLimit(limit, func() {
				runtime.GC()
				r = bench.Ingest(t, cfg)
			})
			r.Scenario = fmt.Sprintf("3b-ingest-%dMiB", limit>>20)
			log.Printf("%-22s %-18s %8.1f Kops/s (%d GCs)",
				r.Scenario, r.Target, r.KopsPerSec, r.NumGC)
			out = append(out, r)
			t.Close()
		}
	}
	return out
}

var fig4Mixes = map[string][]bench.Mix{
	"4a": {bench.MixPut},
	"4b": {bench.MixCompute},
	"4c": {bench.MixGet, bench.MixGetCopy},
	"4d": {bench.Mix95Get5Put},
	"4e": {bench.MixScanAsc, bench.MixScanAscStr},
	"4f": {bench.MixScanDesc, bench.MixScanDescSt},
}

// fig4 runs one panel of Fig. 4 across the thread sweep.
func fig4(opt options, fig string) []bench.Result {
	var out []bench.Result
	for _, mixes := range [][]bench.Mix{fig4Mixes[fig]} {
		for _, mix := range mixes {
			for _, n := range opt.threads {
				cfg := baseConfig(opt)
				cfg.Threads = n
				includeCopy := fig == "4c" && mix.CopyGet
				streamOakOnly := mix.Stream
				for _, t := range newTargets(opt, includeCopy) {
					// The copy-get mix only applies to the Oak-Copy
					// target; the stream mixes only to Oak.
					if includeCopy && t.Name() != "Oak-Copy" {
						t.Close()
						continue
					}
					if !includeCopy && t.Name() == "Oak-Copy" {
						t.Close()
						continue
					}
					if streamOakOnly && t.Name() != "Oak" {
						t.Close()
						continue
					}
					bench.Warm(t, cfg)
					r := bench.RunMedian(t, cfg, mix, opt.iterations)
					r.Scenario = fig + "-" + mix.Name
					log.Printf("%-26s %-18s t=%-3d %10.1f Kops/s",
						r.Scenario, r.Target, n, r.KopsPerSec)
					out = append(out, r)
					t.Close()
				}
			}
		}
	}
	return out
}
