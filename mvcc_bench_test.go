package oakmap_test

// MVCC overhead grid (bench_output_mvcc.txt): what Snapshot support
// costs the hot paths. The contract is that the zero-open-snapshot
// case is (near) free — a Put adds one clock load and one
// retain-floor load, a Get adds nothing — and that cost appears only
// when a snapshot is actually open, proportional to the churn it
// forces into the retained store. ApplyBatch amortization and the
// snapshot read/scan paths round out the grid.

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"oakmap"
)

func mvccBenchMap(b *testing.B, shards int) (*oakmap.Map[uint64, []byte], oakmap.ZeroCopyMap[uint64, []byte]) {
	b.Helper()
	m := oakmap.New[uint64, []byte](oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{BlockSize: 8 << 20, Shards: shards})
	b.Cleanup(m.Close)
	zc := m.ZC()
	val := make([]byte, benchValueSize)
	for k := uint64(0); k < benchKeyRange; k++ {
		if err := zc.Put(k, val); err != nil {
			b.Fatal(err)
		}
	}
	return m, zc
}

// holdSnapshots opens n idle snapshots for the benchmark's duration.
func holdSnapshots(b *testing.B, m *oakmap.Map[uint64, []byte], n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		sn := m.Snapshot()
		b.Cleanup(sn.Close)
	}
}

// BenchmarkMVCCGet: live zero-copy reads with 0/1/4 idle snapshots
// open. Reads never touch the MVCC layer, so the columns should be
// indistinguishable.
func BenchmarkMVCCGet(b *testing.B) {
	for _, open := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("open=%d", open), func(b *testing.B) {
			m, zc := mvccBenchMap(b, 0)
			holdSnapshots(b, m, open)
			rng := rand.New(rand.NewPCG(1, 2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf := zc.Get(rng.Uint64() % benchKeyRange); buf != nil {
					buf.Len()
				}
			}
		})
	}
}

// BenchmarkMVCCPut: overwrites with 0/1/4 idle snapshots open. With
// open snapshots, the first overwrite of each key retains its
// pre-image (copy-on-write); later overwrites of the same key are
// newer than the horizon and pay only the two-load gate.
func BenchmarkMVCCPut(b *testing.B) {
	for _, open := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("open=%d", open), func(b *testing.B) {
			m, zc := mvccBenchMap(b, 0)
			holdSnapshots(b, m, open)
			rng := rand.New(rand.NewPCG(3, 4))
			val := make([]byte, benchValueSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := zc.Put(rng.Uint64()%benchKeyRange, val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMVCCShardedGet: the same read gate through the sharded
// front-end (router + per-shard MVCC state).
func BenchmarkMVCCShardedGet(b *testing.B) {
	for _, open := range []int{0, 1} {
		b.Run(fmt.Sprintf("open=%d", open), func(b *testing.B) {
			m, zc := mvccBenchMap(b, 4)
			holdSnapshots(b, m, open)
			rng := rand.New(rand.NewPCG(5, 6))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf := zc.Get(rng.Uint64() % benchKeyRange); buf != nil {
					buf.Len()
				}
			}
		})
	}
}

// BenchmarkMVCCSnapshotGet: point reads THROUGH a snapshot — the
// version-resolving read path (structure probe + retained-chain
// check), not the live one.
func BenchmarkMVCCSnapshotGet(b *testing.B) {
	m, _ := mvccBenchMap(b, 0)
	sn := m.Snapshot()
	b.Cleanup(sn.Close)
	rng := rand.New(rand.NewPCG(7, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.Get(rng.Uint64() % benchKeyRange)
	}
}

// BenchmarkMVCCApplyBatch: one atomic batch per iteration; the
// ns/entry metric divides the batch out. Compare against
// BenchmarkMVCCPut/open=0 for the per-entry amortization.
func BenchmarkMVCCApplyBatch(b *testing.B) {
	for _, size := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			m, _ := mvccBenchMap(b, 0)
			val := make([]byte, benchValueSize)
			ops := make([]oakmap.Op[uint64, []byte], size)
			rng := rand.New(rand.NewPCG(9, 10))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range ops {
					ops[j] = oakmap.Op[uint64, []byte]{Key: rng.Uint64() % benchKeyRange, Value: val}
				}
				if err := m.ApplyBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/entry")
		})
	}
}

// BenchmarkMVCCSnapshotScan: a 1000-entry ordered scan through a
// snapshot iterator vs the live Range scan (the merge against the
// retained-version store is the delta).
func BenchmarkMVCCSnapshotScan(b *testing.B) {
	const scanLen = 1000
	b.Run("snapshot", func(b *testing.B) {
		m, _ := mvccBenchMap(b, 0)
		sn := m.Snapshot()
		b.Cleanup(sn.Close)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			sn.Ascend(nil, nil, func(_ uint64, _ []byte) bool {
				n++
				return n < scanLen
			})
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*scanLen), "ns/entry")
	})
	b.Run("live", func(b *testing.B) {
		m, _ := mvccBenchMap(b, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			m.Range(nil, nil, func(_ uint64, _ []byte) bool {
				n++
				return n < scanLen
			})
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*scanLen), "ns/entry")
	})
}
