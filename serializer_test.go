package oakmap

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// Round-trip and order-preservation properties for the built-in
// serializers. Order preservation is what lets the default bytes.Compare
// comparator stand in for the user's natural key order.

func TestBytesSerializerRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		s := BytesSerializer{}
		buf := make([]byte, s.SizeOf(b))
		s.Serialize(b, buf)
		out := s.Deserialize(buf)
		return bytes.Equal(out, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesSerializerDeserializeCopies(t *testing.T) {
	s := BytesSerializer{}
	src := []byte("hello")
	out := s.Deserialize(src)
	src[0] = 'X'
	if out[0] != 'h' {
		t.Fatal("Deserialize must copy, not alias")
	}
}

func TestStringSerializerRoundTripAndOrder(t *testing.T) {
	f := func(a, b string) bool {
		s := StringSerializer{}
		ab := make([]byte, s.SizeOf(a))
		bb := make([]byte, s.SizeOf(b))
		s.Serialize(a, ab)
		s.Serialize(b, bb)
		if s.Deserialize(ab) != a {
			return false
		}
		// Serialized order == natural order.
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		}
		return bytes.Compare(ab, bb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64SerializerOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		s := Uint64Serializer{}
		ab := make([]byte, 8)
		bb := make([]byte, 8)
		s.Serialize(a, ab)
		s.Serialize(b, bb)
		if s.Deserialize(ab) != a || s.Deserialize(bb) != b {
			return false
		}
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		}
		return bytes.Compare(ab, bb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64SerializerOrder(t *testing.T) {
	f := func(a, b int64) bool {
		s := Int64Serializer{}
		ab := make([]byte, 8)
		bb := make([]byte, 8)
		s.Serialize(a, ab)
		s.Serialize(b, bb)
		if s.Deserialize(ab) != a || s.Deserialize(bb) != b {
			return false
		}
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		}
		return bytes.Compare(ab, bb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Explicit extremes.
	for _, pair := range [][2]int64{
		{math.MinInt64, math.MaxInt64},
		{math.MinInt64, 0},
		{-1, 0},
		{-1, 1},
	} {
		s := Int64Serializer{}
		lo := make([]byte, 8)
		hi := make([]byte, 8)
		s.Serialize(pair[0], lo)
		s.Serialize(pair[1], hi)
		if bytes.Compare(lo, hi) >= 0 {
			t.Fatalf("order broken for %d < %d", pair[0], pair[1])
		}
	}
}
