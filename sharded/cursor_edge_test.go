package sharded

import (
	"bytes"
	"fmt"
	"testing"

	"oakmap/internal/core"
)

// Edge cases for the merged cursor that the property tests' random
// populations can miss by construction: the degenerate single-shard
// tree, and a tree where every leaf is exhausted from the start.

func TestNewCursorSingleShard(t *testing.T) {
	m := New(1, &core.Options{ChunkCapacity: 16, Pool: testPool(t)})
	t.Cleanup(m.Close)
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// k=1 degenerates the loser tree to a single leaf; the cursor must
	// still yield every key in order, with both bounds honored.
	cur := m.NewCursor(nil, nil, false)
	var prev []byte
	count := 0
	for {
		src, key, keyRef, h, ok := cur.Next()
		if !ok {
			break
		}
		if src == nil || keyRef == 0 || h == 0 {
			t.Fatalf("entry %d: zero source/ref/handle", count)
		}
		if prev != nil && bytes.Compare(key, prev) <= 0 {
			t.Fatalf("order violation at %q after %q", key, prev)
		}
		prev = append(prev[:0], key...)
		count++
	}
	if count != n {
		t.Fatalf("single-shard cursor yielded %d keys, want %d", count, n)
	}

	// Bounded and descending over the same degenerate tree.
	cur = m.NewCursor([]byte("k010"), []byte("k020"), false)
	count = 0
	for {
		_, key, _, _, ok := cur.Next()
		if !ok {
			break
		}
		if string(key) < "k010" || string(key) >= "k020" {
			t.Fatalf("bounded cursor leaked %q", key)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("bounded single-shard cursor yielded %d keys, want 10", count)
	}

	cur = m.NewCursor(nil, nil, true)
	prev = nil
	count = 0
	for {
		_, key, _, _, ok := cur.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(key, prev) >= 0 {
			t.Fatalf("descending order violation at %q after %q", key, prev)
		}
		prev = append(prev[:0], key...)
		count++
	}
	if count != n {
		t.Fatalf("descending single-shard cursor yielded %d keys, want %d", count, n)
	}
}

func TestNewCursorAllShardsEmpty(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		m := New(shards, &core.Options{ChunkCapacity: 16, Pool: testPool(t)})
		for _, desc := range []bool{false, true} {
			cur := m.NewCursor(nil, nil, desc)
			if _, key, _, _, ok := cur.Next(); ok {
				t.Errorf("shards=%d desc=%v: empty map yielded %q", shards, desc, key)
			}
			// Next after exhaustion stays exhausted (no resurrection).
			if _, _, _, _, ok := cur.Next(); ok {
				t.Errorf("shards=%d desc=%v: cursor resurrected after exhaustion", shards, desc)
			}
		}
		// A bounded window that excludes everything behaves the same even
		// when the map is populated.
		if err := m.Put([]byte("zzz"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		cur := m.NewCursor([]byte("a"), []byte("b"), false)
		if _, key, _, _, ok := cur.Next(); ok {
			t.Errorf("shards=%d: out-of-window cursor yielded %q", shards, key)
		}
		m.Close()
	}
}
