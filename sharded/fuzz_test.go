package sharded

import (
	"bytes"
	"testing"

	"oakmap/internal/arena"
	"oakmap/internal/core"
)

// FuzzRouter feeds arbitrary keys and shard counts through the router
// and a live sharded map, checking the properties everything above the
// hash relies on:
//
//   - routing is pure: the same key maps to the same in-range shard on
//     every call;
//   - exactly one shard owns the key: after Put through the map, the
//     routed shard's Get finds it and no other shard does;
//   - the round trip is faithful: Get-after-Put returns the value, the
//     merged scan yields the key exactly once, and Remove erases it
//     everywhere.
func FuzzRouter(f *testing.F) {
	f.Add([]byte(""), uint8(0))
	f.Add([]byte("a"), uint8(3))
	f.Add([]byte("oak/sharded"), uint8(15))
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2a}, uint8(4)) // ik(42)
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint8(255))
	f.Fuzz(func(t *testing.T, key []byte, n uint8) {
		if len(key) > 1<<12 {
			key = key[:1<<12] // keep allocations inside the test pool's blocks
		}
		shards := 1 + int(n%16)
		m := New(shards, &core.Options{ChunkCapacity: 16, Pool: arena.NewPool(1<<20, 0)})
		defer m.Close()

		idx := m.ShardIndex(key)
		if idx < 0 || idx >= shards {
			t.Fatalf("ShardIndex out of range: %d of %d", idx, shards)
		}
		for rep := 0; rep < 3; rep++ {
			if got := m.ShardIndex(key); got != idx {
				t.Fatalf("routing unstable: %d then %d", idx, got)
			}
		}

		if err := m.Put(key, []byte("fuzz-value")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		h, ok := m.Get(key)
		if !ok {
			t.Fatal("Get after Put missed")
		}
		b, err := m.ShardFor(key).CopyValue(h, nil)
		if err != nil || string(b) != "fuzz-value" {
			t.Fatalf("round trip: %q, %v", b, err)
		}
		for i, s := range m.Shards() {
			_, has := s.Get(key)
			if has != (i == idx) {
				t.Fatalf("shard %d presence=%v; owner is %d", i, has, idx)
			}
		}
		seen := 0
		m.Ascend(nil, nil, func(src *core.Map, k []byte, kr uint64, vh core.ValueHandle) bool {
			if bytes.Equal(k, key) {
				seen++
			}
			return true
		})
		if seen != 1 {
			t.Fatalf("merged scan yielded the key %d times", seen)
		}
		if ok, err := m.Remove(key); !ok || err != nil {
			t.Fatalf("Remove: %v, %v", ok, err)
		}
		if _, still := m.Get(key); still {
			t.Fatal("key survived Remove")
		}
	})
}
