package sharded

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"oakmap/internal/arena"
	"oakmap/internal/core"
)

func testPool(t testing.TB) *arena.Pool {
	t.Helper()
	return arena.NewPool(1<<20, 0)
}

// newTestSharded builds an n-shard map with tiny chunks (so tests
// exercise rebalances) over a private pool.
func newTestSharded(t testing.TB, n, chunkCap int) *Map {
	t.Helper()
	m := New(n, &core.Options{ChunkCapacity: chunkCap, Pool: testPool(t)})
	t.Cleanup(m.Close)
	return m
}

func ik(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func iv(i int) []byte {
	return []byte(fmt.Sprintf("value-%08d", i))
}

func TestShardedPointOps(t *testing.T) {
	m := newTestSharded(t, 4, 16)
	const n = 300
	for i := 0; i < n; i++ {
		if err := m.Put(ik(i), iv(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d; want %d", got, n)
	}
	// With 300 FNV-routed keys every one of 4 shards must own some.
	for i, s := range m.Shards() {
		if s.Len() == 0 {
			t.Fatalf("shard %d owns no keys: router is not spreading", i)
		}
	}
	for i := 0; i < n; i++ {
		h, ok := m.Get(ik(i))
		if !ok {
			t.Fatalf("Get(%d) missing", i)
		}
		b, err := m.ShardFor(ik(i)).CopyValue(h, nil)
		if err != nil || !bytes.Equal(b, iv(i)) {
			t.Fatalf("Get(%d) = %q, %v; want %q", i, b, err, iv(i))
		}
	}
	// PutIfAbsent respects presence; ComputeIfPresent routes to the owner.
	if ok, _ := m.PutIfAbsent(ik(5), []byte("x")); ok {
		t.Fatal("PutIfAbsent overwrote a present key")
	}
	if ok, _ := m.ComputeIfPresent(ik(5), func(w *core.WBuffer) error {
		return w.Set([]byte("computed"))
	}); !ok {
		t.Fatal("ComputeIfPresent missed a present key")
	}
	h, _ := m.Get(ik(5))
	if b, _ := m.ShardFor(ik(5)).CopyValue(h, nil); string(b) != "computed" {
		t.Fatalf("after compute: %q", b)
	}
	for i := 0; i < n; i++ {
		if ok, err := m.Remove(ik(i)); !ok || err != nil {
			t.Fatalf("Remove(%d) = %v, %v", i, ok, err)
		}
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len after removes = %d; want 0", got)
	}
}

func TestShardedRouterStability(t *testing.T) {
	m := newTestSharded(t, 7, 16)
	for i := 0; i < 1000; i++ {
		k := ik(i)
		idx := m.ShardIndex(k)
		if idx < 0 || idx >= m.NumShards() {
			t.Fatalf("ShardIndex(%d) = %d out of range", i, idx)
		}
		for rep := 0; rep < 3; rep++ {
			if got := m.ShardIndex(k); got != idx {
				t.Fatalf("ShardIndex(%d) flapped: %d then %d", i, idx, got)
			}
		}
		if m.ShardFor(k) != m.Shards()[idx] {
			t.Fatalf("ShardFor(%d) disagrees with ShardIndex", i)
		}
	}
}

// TestShardedNavigation checks the cross-shard reduce queries against a
// sorted reference over a key set that is guaranteed to span shards.
func TestShardedNavigation(t *testing.T) {
	m := newTestSharded(t, 4, 16)
	var keys [][]byte
	for i := 0; i < 200; i += 3 {
		k := ik(i)
		keys = append(keys, k)
		if err := m.Put(k, iv(i)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })

	wantKey := func(name string, e Entry, ok bool, want []byte) {
		t.Helper()
		if want == nil {
			if ok {
				t.Fatalf("%s: got %x; want none", name, e.Key)
			}
			return
		}
		if !ok {
			t.Fatalf("%s: got none; want %x", name, want)
		}
		if !bytes.Equal(e.Key, want) {
			t.Fatalf("%s: got %x; want %x", name, e.Key, want)
		}
		// The Entry's references must belong to the owning shard.
		if e.Src != m.ShardFor(e.Key) {
			t.Fatalf("%s: Src is not the routed shard", name)
		}
		if b, err := e.Src.CopyValue(e.Handle, nil); err != nil || len(b) == 0 {
			t.Fatalf("%s: value unreadable: %v", name, err)
		}
	}

	e, ok := m.First()
	wantKey("First", e, ok, keys[0])
	e, ok = m.Last()
	wantKey("Last", e, ok, keys[len(keys)-1])

	// Probe around present keys and gaps (keys are multiples of 3).
	e, ok = m.Floor(ik(7))
	wantKey("Floor(7)", e, ok, ik(6))
	e, ok = m.Floor(ik(6))
	wantKey("Floor(6)=self", e, ok, ik(6))
	e, ok = m.Ceiling(ik(7))
	wantKey("Ceiling(7)", e, ok, ik(9))
	e, ok = m.Ceiling(ik(9))
	wantKey("Ceiling(9)=self", e, ok, ik(9))
	e, ok = m.Lower(ik(9))
	wantKey("Lower(9)", e, ok, ik(6))
	e, ok = m.Higher(ik(9))
	wantKey("Higher(9)", e, ok, ik(12))
	e, ok = m.Lower(ik(0))
	wantKey("Lower(min)", e, ok, nil)
	e, ok = m.Higher(ik(198))
	wantKey("Higher(max)", e, ok, nil)
}

func TestShardedQuiesceDrainsAllShards(t *testing.T) {
	m := newTestSharded(t, 3, 16)
	for i := 0; i < 200; i++ {
		m.Put(ik(i), iv(i))
	}
	for i := 0; i < 200; i++ {
		m.Remove(ik(i))
	}
	if !m.Quiesce() {
		t.Fatal("Quiesce did not drain all shards")
	}
	for i, s := range m.Shards() {
		st := s.ReclaimStats()
		if st.LimboBytes != 0 {
			t.Fatalf("shard %d: %d limbo bytes after Quiesce", i, st.LimboBytes)
		}
	}
}
