package sharded

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"oakmap/internal/core"
	"oakmap/internal/lincheck"
)

// These tests extend the Wing & Gong campaign (internal/lincheck) across
// the sharding layer: point-op histories must stay linearizable when the
// keys are scattered over shards, and merged ordered scans must be
// per-step linearizable (every yielded value was current at some instant
// inside its step) while staying globally sorted and duplicate-free.

// runShardedOp mirrors core's runRecordedOp against the sharded map.
func runShardedOp(t testing.TB, m *Map, clock *atomic.Uint64, kind lincheck.Kind, key []byte, arg string) lincheck.Op {
	r := lincheck.Op{Key: string(key), Kind: kind, Arg: arg}
	r.Inv = clock.Add(1)
	switch kind {
	case lincheck.Put:
		if err := m.Put(key, []byte(arg)); err != nil {
			t.Errorf("put: %v", err)
		}
	case lincheck.PutIfAbsent:
		ok, err := m.PutIfAbsent(key, []byte(arg))
		if err != nil {
			t.Errorf("putIfAbsent: %v", err)
		}
		r.RetBool = ok
	case lincheck.Remove:
		ok, err := m.Remove(key)
		if err != nil {
			t.Errorf("remove: %v", err)
		}
		r.RetBool = ok
	case lincheck.Get:
		s := m.ShardFor(key)
		if hd, ok := s.Get(key); ok {
			b, err := s.CopyValue(hd, nil)
			if err == nil {
				r.RetBool = true
				r.RetVal = string(b)
			}
		}
	case lincheck.Upsert:
		err := m.PutIfAbsentComputeIfPresent(key, []byte(arg),
			func(w *core.WBuffer) error {
				cur := append([]byte(nil), w.Bytes()...)
				return w.Set(append(append(cur, '|'), arg...))
			})
		if err != nil {
			t.Errorf("upsert: %v", err)
		}
	case lincheck.Compute:
		ok, err := m.ComputeIfPresent(key, func(w *core.WBuffer) error {
			cur := append([]byte(nil), w.Bytes()...)
			return w.Set(append(append(cur, '#'), arg...))
		})
		if err != nil {
			t.Errorf("compute: %v", err)
		}
		r.RetBool = ok
	}
	r.Ret = clock.Add(1)
	return r
}

// watchedKeys picks nKeys keys that provably land on distinct shards, so
// the history truly crosses shard boundaries.
func watchedKeys(t *testing.T, m *Map, nKeys int) [][]byte {
	t.Helper()
	var keys [][]byte
	used := map[int]bool{}
	for i := 0; len(keys) < nKeys; i++ {
		if i > 1<<16 {
			t.Fatal("could not find keys on distinct shards")
		}
		k := ik(i)
		if s := m.ShardIndex(k); !used[s] {
			used[s] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// TestShardedPointOpLinearizability records concurrent multi-key
// histories whose keys are spread across distinct shards.
func TestShardedPointOpLinearizability(t *testing.T) {
	const histories = 80
	const threads = 4
	const opsPerThread = 4
	for h := 0; h < histories; h++ {
		m := New(3, &core.Options{ChunkCapacity: 16, Pool: testPool(t)})
		keys := watchedKeys(t, m, 3)
		// Neighbour churn so chunks rebalance in every shard.
		for i := 100; i < 160; i++ {
			m.Put(ik(i), iv(i))
		}
		var clock atomic.Uint64
		recs := make([][]lincheck.Op, threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 55))
				for i := 0; i < opsPerThread; i++ {
					kind := lincheck.Kind(rng.Uint64() % 6)
					key := keys[rng.Uint64()%uint64(len(keys))]
					arg := fmt.Sprintf("g%d-%d", g, i)
					recs[g] = append(recs[g], runShardedOp(t, m, &clock, kind, key, arg))
				}
			}(g)
		}
		wg.Wait()
		var all []lincheck.Op
		for _, rs := range recs {
			all = append(all, rs...)
		}
		if !lincheck.Linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("sharded history %d is not linearizable", h)
		}
		m.Close()
	}
}

// TestShardedScanLinearizability adds merged cross-shard scans to the
// history: each scan step is recorded with its own timestamps, converted
// to a Get by lincheck.ScanOps, and checked together with the writers'
// ops; the raw step sequence is separately checked for global order.
func TestShardedScanLinearizability(t *testing.T) {
	const histories = 40
	const threads = 3
	const opsPerThread = 3
	for h := 0; h < histories; h++ {
		m := New(3, &core.Options{ChunkCapacity: 16, Pool: testPool(t)})
		keys := watchedKeys(t, m, 3)
		watched := map[string]bool{}
		for _, k := range keys {
			watched[string(k)] = true
		}
		// Background residents so merged scans actually interleave
		// shards around the watched keys.
		for i := 100; i < 140; i++ {
			m.Put(ik(i), iv(i))
		}
		var clock atomic.Uint64
		var mu sync.Mutex
		var all []lincheck.Op
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 66))
				for i := 0; i < opsPerThread; i++ {
					kind := lincheck.Kind(rng.Uint64() % 6)
					key := keys[rng.Uint64()%uint64(len(keys))]
					arg := fmt.Sprintf("g%d-%d", g, i)
					r := runShardedOp(t, m, &clock, kind, key, arg)
					mu.Lock()
					all = append(all, r)
					mu.Unlock()
				}
			}(g)
		}
		// Scanner: two merged passes per history, recorded step by step
		// through the pull cursor so each step gets a tight window.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 2; pass++ {
				desc := pass%2 == 1
				cur := m.NewCursor(nil, nil, desc)
				var steps []lincheck.ScanStep  // every yield, for order
				var valued []lincheck.ScanStep // yields whose value read succeeded
				for {
					inv := clock.Add(1)
					src, key, _, hd, ok := cur.Next()
					if !ok {
						break
					}
					st := lincheck.ScanStep{Key: string(key), Inv: inv}
					val, err := src.CopyValue(hd, nil)
					st.Ret = clock.Add(1)
					steps = append(steps, st)
					if err == nil {
						st.Val = string(val)
						valued = append(valued, st)
					}
				}
				if i := lincheck.ScanOrdered(steps, desc, bytes.Compare); i != -1 {
					mu.Lock()
					t.Errorf("history %d: scan step %d out of global order (desc=%v)", h, i, desc)
					mu.Unlock()
					return
				}
				ops := lincheck.ScanOps(valued, func(k string) bool { return watched[k] })
				mu.Lock()
				all = append(all, ops...)
				mu.Unlock()
			}
		}()
		wg.Wait()
		if !lincheck.Linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("sharded scan history %d is not linearizable", h)
		}
		m.Close()
	}
}
