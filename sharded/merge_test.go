package sharded

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"testing"

	"oakmap/internal/core"
)

// --- loser-tree property tests (white box) ---
//
// The tree is exercised directly over hand-built leaves, each backed by
// a private single core map holding an arbitrary key subset — including
// empty leaves and leaves that exhaust long before the others — and the
// merged output is compared against a reference sort of the union.

// mkLeaf builds a leaf over a fresh core map containing exactly keys,
// with its cursor primed (as NewCursor does).
func mkLeaf(t *testing.T, keys [][]byte, desc bool) *leaf {
	t.Helper()
	s := core.New(&core.Options{ChunkCapacity: 16, Pool: testPool(t)})
	t.Cleanup(s.Close)
	for _, k := range keys {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	l := &leaf{src: s, cur: s.NewCursor(nil, nil, desc)}
	l.advance()
	return l
}

// drainTree pulls every key out of a fresh loser tree over the leaves.
func drainTree(t *testing.T, leaves []*leaf, desc bool) [][]byte {
	t.Helper()
	tree := newLoserTree(bytes.Compare, desc, leaves)
	var out [][]byte
	for {
		w := tree.winner()
		if w == nil {
			return out
		}
		out = append(out, append([]byte(nil), w.key...))
		tree.pop()
	}
}

func refMerge(parts [][][]byte, desc bool) [][]byte {
	var all [][]byte
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		c := bytes.Compare(all[i], all[j])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return all
}

func sameKeys(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestLoserTreeMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 40; trial++ {
		k := 1 + int(rng.Uint64()%6)
		desc := trial%2 == 1
		parts := make([][][]byte, k)
		for s := 0; s < k; s++ {
			// Uneven sizes on purpose: some leaves empty, some long, so
			// single-leaf exhaustion happens mid-merge.
			n := int(rng.Uint64() % 20)
			if rng.Uint64()%4 == 0 {
				n = 0
			}
			seen := map[int]bool{}
			for len(parts[s]) < n {
				v := int(rng.Uint64() % 500)
				// Disjoint within a leaf (a map holds a key once); across
				// leaves duplicates are allowed and must merge stably.
				if seen[v] {
					continue
				}
				seen[v] = true
				parts[s] = append(parts[s], ik(v))
			}
		}
		leaves := make([]*leaf, k)
		for s := range parts {
			leaves[s] = mkLeaf(t, parts[s], desc)
		}
		got := drainTree(t, leaves, desc)
		want := refMerge(parts, desc)
		if !sameKeys(got, want) {
			t.Fatalf("trial %d (k=%d desc=%v): merged %d keys != reference %d",
				trial, k, desc, len(got), len(want))
		}
	}
}

func TestLoserTreeAllEmpty(t *testing.T) {
	leaves := []*leaf{mkLeaf(t, nil, false), mkLeaf(t, nil, false), mkLeaf(t, nil, false)}
	if got := drainTree(t, leaves, false); len(got) != 0 {
		t.Fatalf("merge of empty leaves yielded %d keys", len(got))
	}
}

func TestLoserTreeSingleLiveLeaf(t *testing.T) {
	keys := [][]byte{ik(1), ik(2), ik(3)}
	leaves := []*leaf{mkLeaf(t, nil, false), mkLeaf(t, keys, false), mkLeaf(t, nil, false)}
	got := drainTree(t, leaves, false)
	if !sameKeys(got, keys) {
		t.Fatalf("single live leaf: got %d keys", len(got))
	}
}

// TestLoserTreeTieStability: equal keys on different leaves must come
// out lowest-leaf-first (cannot happen between shards of one map, but
// the tree must not misorder or drop them).
func TestLoserTreeTieStability(t *testing.T) {
	l0 := mkLeaf(t, [][]byte{ik(5)}, false)
	l1 := mkLeaf(t, [][]byte{ik(5)}, false)
	tree := newLoserTree(bytes.Compare, false, []*leaf{l0, l1})
	first := tree.winner()
	if first == nil || first != l0 {
		t.Fatal("tie did not go to the lower leaf")
	}
	tree.pop()
	second := tree.winner()
	if second == nil || second != l1 {
		t.Fatal("tied duplicate dropped")
	}
	tree.pop()
	if tree.winner() != nil {
		t.Fatal("tree did not drain")
	}
}

// --- merged scan tests (black box, through sharded.Map) ---

// collectScan gathers keys from Ascend/Descend, asserting the callback
// contract along the way: src is the routed shard and the value behind
// (src, h) is readable or concurrently deleted, never garbage.
func collectScan(t *testing.T, m *Map, lo, hi []byte, desc bool) [][]byte {
	t.Helper()
	var got [][]byte
	scan := m.Ascend
	if desc {
		scan = m.Descend
	}
	scan(lo, hi, func(src *core.Map, key []byte, kr uint64, h core.ValueHandle) bool {
		if src != m.ShardFor(key) {
			t.Fatalf("scan yielded key %x from a shard that does not own it", key)
		}
		got = append(got, append([]byte(nil), key...))
		return true
	})
	return got
}

func TestMergedScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for _, nShards := range []int{1, 2, 3, 5, 8} {
		m := newTestSharded(t, nShards, 16)
		present := map[int]bool{}
		for i := 0; i < 400; i++ {
			v := int(rng.Uint64() % 1000)
			present[v] = true
			if err := m.Put(ik(v), iv(v)); err != nil {
				t.Fatal(err)
			}
		}
		var ref [][]byte
		for v := range present {
			ref = append(ref, ik(v))
		}
		sort.Slice(ref, func(i, j int) bool { return bytes.Compare(ref[i], ref[j]) < 0 })

		if got := collectScan(t, m, nil, nil, false); !sameKeys(got, ref) {
			t.Fatalf("shards=%d: full ascend %d keys != reference %d", nShards, len(got), len(ref))
		}
		refDesc := make([][]byte, len(ref))
		for i := range ref {
			refDesc[i] = ref[len(ref)-1-i]
		}
		if got := collectScan(t, m, nil, nil, true); !sameKeys(got, refDesc) {
			t.Fatalf("shards=%d: full descend mismatched", nShards)
		}

		// Sub-ranges with bounds sitting exactly on present keys: lo is
		// inclusive, hi exclusive, in both directions.
		lo, hi := ref[len(ref)/4], ref[3*len(ref)/4]
		var refSub [][]byte
		for _, k := range ref {
			if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0 {
				refSub = append(refSub, k)
			}
		}
		if got := collectScan(t, m, lo, hi, false); !sameKeys(got, refSub) {
			t.Fatalf("shards=%d: bounded ascend mismatched (%d vs %d)", nShards, len(got), len(refSub))
		}
		refSubDesc := make([][]byte, len(refSub))
		for i := range refSub {
			refSubDesc[i] = refSub[len(refSub)-1-i]
		}
		if got := collectScan(t, m, lo, hi, true); !sameKeys(got, refSubDesc) {
			t.Fatalf("shards=%d: bounded descend mismatched", nShards)
		}
	}
}

func TestMergedScanEarlyStop(t *testing.T) {
	m := newTestSharded(t, 4, 16)
	for i := 0; i < 100; i++ {
		m.Put(ik(i), iv(i))
	}
	n := 0
	m.Ascend(nil, nil, func(src *core.Map, key []byte, kr uint64, h core.ValueHandle) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d entries; want 7", n)
	}
}

// TestMergedCursorParkedAcrossChurn parks a merged cursor mid-scan while
// writers churn and rebalance every shard, then resumes: keys present
// throughout must each be yielded exactly once, in order — the
// cross-shard extension of the core cursor's resume guarantee.
func TestMergedCursorParkedAcrossChurn(t *testing.T) {
	m := newTestSharded(t, 4, 16)
	// Residents: multiples of 4, present for the cursor's whole life.
	for i := 0; i < 400; i += 4 {
		m.Put(ik(i), iv(i))
	}
	cur := m.NewCursor(nil, nil, false)
	var got [][]byte
	step := func() bool {
		src, key, _, h, ok := cur.Next()
		if !ok {
			return false
		}
		if v := int(keyInt(key)); v%4 == 0 {
			got = append(got, append([]byte(nil), key...))
		}
		_ = src
		_ = h
		return true
	}
	for i := 0; i < 50; i++ { // first stretch
		if !step() {
			break
		}
	}
	// Park: churn non-resident keys hard enough to rebalance chunks in
	// every shard (tiny chunks make this cheap), while the cursor holds
	// no pin anywhere.
	for round := 0; round < 3; round++ {
		for i := 1; i < 400; i += 2 {
			m.Put(ik(i), iv(i))
		}
		for i := 1; i < 400; i += 2 {
			m.Remove(ik(i))
		}
	}
	for step() { // resume to exhaustion
	}
	var want [][]byte
	for i := 0; i < 400; i += 4 {
		want = append(want, ik(i))
	}
	if !sameKeys(got, want) {
		t.Fatalf("parked cursor yielded %d residents; want %d (skip or duplicate across park)",
			len(got), len(want))
	}
}

func keyInt(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}
