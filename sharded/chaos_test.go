package sharded

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"oakmap/internal/core"
	"oakmap/internal/faultpoint"
)

func disarmOnExit(t *testing.T) {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
}

// TestChaosShardedScan drives merged scans while every layer underneath
// is being shaken: per-shard rebalances and epoch advance/drain are
// stretched by pausing hooks, and the sharding layer's own points
// (shard/route, shard/scan-rotate) jitter the routing and the merge's
// shard-rotation moments. Through all of it the scans must stay globally
// sorted, duplicate-free, and complete over the resident key set.
func TestChaosShardedScan(t *testing.T) {
	disarmOnExit(t)

	FpRoute.Arm(faultpoint.WithProb(0.05, 11))
	FpScanRotate.Arm(faultpoint.Delayed(5*time.Microsecond, faultpoint.WithProb(0.2, 12)))
	for i, name := range []string{
		"core/rebalance-freeze", "core/rebalance-split", "core/rebalance-index",
	} {
		if err := faultpoint.Arm(name,
			faultpoint.Delayed(10*time.Microsecond, faultpoint.WithProb(0.3, uint64(20+i)))); err != nil {
			t.Fatalf("arm %s: %v", name, err)
		}
	}
	for i, name := range []string{"epoch/advance", "epoch/drain"} {
		if err := faultpoint.Arm(name,
			faultpoint.Delayed(5*time.Microsecond, faultpoint.WithProb(0.2, uint64(30+i)))); err != nil {
			t.Fatalf("arm %s: %v", name, err)
		}
	}

	m := newTestSharded(t, 4, 16)
	// Residents (i ≡ 0 mod 4) are inserted up front and never touched:
	// every scan must yield each exactly once. Odd keys churn.
	const span = 512
	var residents [][]byte
	for i := 0; i < span; i += 4 {
		if err := m.Put(ik(i), iv(i)); err != nil {
			t.Fatal(err)
		}
		residents = append(residents, ik(i))
	}

	var writerWg, scanWg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: insert/remove churn keys, forcing rebalances (tiny
	// chunks) and reclamation traffic in every shard.
	for w := 0; w < 3; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := 1 + 2*int(rng.Uint64()%(span/2))
				if rng.Uint64()%2 == 0 {
					m.Put(ik(i), iv(i))
				} else {
					m.Remove(ik(i))
				}
			}
		}(w)
	}

	// Scanners: full merged ascends and descends under fire.
	scanErr := make(chan string, 32)
	for s := 0; s < 2; s++ {
		scanWg.Add(1)
		go func(s int) {
			defer scanWg.Done()
			desc := s%2 == 1
			for pass := 0; pass < 6; pass++ {
				var prev []byte
				seen := make(map[string]bool)
				gotResidents := 0
				scan := m.Ascend
				if desc {
					scan = m.Descend
				}
				scan(nil, nil, func(src *core.Map, key []byte, kr uint64, h core.ValueHandle) bool {
					if prev != nil {
						c := bytes.Compare(prev, key)
						if desc {
							c = -c
						}
						if c >= 0 {
							scanErr <- "scan out of order or duplicated under chaos"
							return false
						}
					}
					prev = append(prev[:0], key...)
					ks := string(key)
					if seen[ks] {
						scanErr <- "duplicate key under chaos"
						return false
					}
					seen[ks] = true
					if v := keyInt(key); v%4 == 0 && v < span {
						gotResidents++
					}
					return true
				})
				if gotResidents != len(residents) {
					scanErr <- "scan missed resident keys under chaos"
				}
			}
		}(s)
	}

	// Scanners run a fixed number of passes; writers churn until the
	// scanners are done. scanErr is buffered beyond the worst case, so
	// scanners never block reporting.
	scanWg.Wait()
	close(stop)
	writerWg.Wait()
	select {
	case msg := <-scanErr:
		t.Fatal(msg)
	default:
	}

	// The injection must have been load-bearing.
	if FpRoute.Hits() == 0 {
		t.Fatal("shard/route never hit: routing not exercised")
	}
	if FpScanRotate.Hits() == 0 {
		t.Fatal("shard/scan-rotate never hit: merged scans never rotated shards")
	}
	cts := faultpoint.Counters()
	if cts["core/rebalance-freeze"].Hits == 0 {
		t.Fatal("rebalance chaos never hit: churn not load-bearing")
	}
	if cts["epoch/advance"].Hits == 0 {
		t.Fatal("epoch chaos never hit")
	}
	t.Logf("chaos: route=%d rotate=%d rebalance=%d epoch=%d",
		FpRoute.Hits(), FpScanRotate.Hits(),
		cts["core/rebalance-freeze"].Hits, cts["epoch/advance"].Hits)
}
