package sharded

import (
	"oakmap/internal/core"
)

// Snapshot is a consistent point-in-time view across every shard: a
// version vector with one stabilized core snapshot per shard. The
// vector is consistent with respect to atomic batches — verMu orders
// each batch's prepare phase entirely before or entirely after the
// snapshot's begin phase, so the view contains a batch's writes on all
// shards or on none.
type Snapshot struct {
	m    *Map
	vers []uint64
}

// Snapshot acquires a consistent cross-shard snapshot. It must be
// released with Close, or every shard's reclaim horizon stays pinned.
func (m *Map) Snapshot() *Snapshot {
	vers := make([]uint64, len(m.shards))
	m.verMu.Lock()
	for i, s := range m.shards {
		vers[i] = s.BeginSnapshot()
	}
	m.verMu.Unlock()
	// Stabilization (waiting out in-flight writes ≤ S per shard) runs
	// outside verMu: it can block on batch decisions, and batches never
	// wait on snapshots, so holding the ratchet lock here would stall
	// unrelated batches for no correctness gain.
	for i, s := range m.shards {
		s.StabilizeSnapshot(vers[i])
	}
	return &Snapshot{m: m, vers: vers}
}

// Close releases the snapshot on every shard, letting the reclaim
// horizons advance and retained pre-images drain.
func (sn *Snapshot) Close() {
	for i, s := range sn.m.shards {
		s.EndSnapshot(sn.vers[i])
	}
}

// Versions exposes the snapshot's per-shard version vector (index-
// aligned with Shards), for stats and diagnostics.
func (sn *Snapshot) Versions() []uint64 { return sn.vers }

// Get resolves key in the frozen view, appending the value to dst.
func (sn *Snapshot) Get(key, dst []byte) ([]byte, bool) {
	i := sn.m.ShardIndex(key)
	return sn.m.shards[i].SnapGet(sn.vers[i], key, dst)
}

// SnapCursor is a pull-based merged scan over the frozen view — the
// snapshot analogue of Cursor, built on the same loser tree with
// per-shard core.SnapCursor streams plugged into the leaves.
type SnapCursor struct {
	t       *loserTree
	started bool
}

// NewCursor opens a merged frozen-view cursor over lo ≤ key < hi (nil
// bounds open), descending when desc is set. The snapshot must stay
// open for the cursor's lifetime.
func (sn *Snapshot) NewCursor(lo, hi []byte, desc bool) *SnapCursor {
	leaves := make([]*leaf, len(sn.m.shards))
	for i, s := range sn.m.shards {
		sc := s.NewSnapCursor(sn.vers[i], lo, hi, desc)
		l := &leaf{src: s}
		l.step = func(l *leaf) {
			l.key, l.val, l.ok = sc.Next()
		}
		l.advance() // prime the head before building the tree
		leaves[i] = l
	}
	return &SnapCursor{t: newLoserTree(sn.m.cmp, desc, leaves)}
}

// Next returns the frozen view's next entry in global order, or
// ok=false at the end. key and val are owned by the winning shard's
// cursor and valid until the following Next call.
func (c *SnapCursor) Next() (key, val []byte, ok bool) {
	if c.started {
		c.t.pop()
	}
	c.started = true
	w := c.t.winner()
	if w == nil {
		return nil, nil, false
	}
	return w.key, w.val, true
}

// ApplyBatch applies ops atomically across shards: ops are deduped
// (last wins), partitioned, and installed shard-by-shard in index order
// (key order within each shard) under one shared batch descriptor, so
// readers and snapshots observe all of the batch or none — on any shard.
func (m *Map) ApplyBatch(ops []core.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	norm := core.NormalizeBatch(ops, m.cmp)
	perShard := make([][]core.BatchOp, len(m.shards))
	for _, op := range norm {
		i := m.ShardIndex(op.Key)
		perShard[i] = append(perShard[i], op)
	}
	desc := core.NewBatchDesc()
	bis := make([]*core.BatchInstall, len(m.shards))
	m.verMu.Lock()
	for i, s := range m.shards {
		if len(perShard[i]) > 0 {
			bis[i] = s.PrepareBatch(desc)
		}
	}
	m.verMu.Unlock()
	// Installs follow a global total order (shard index, then key), so
	// two batches waiting on each other's flagged values cannot cycle.
	for i, s := range m.shards {
		if bis[i] == nil {
			continue
		}
		for _, op := range perShard[i] {
			var err error
			if op.Delete {
				err = s.InstallBatchDelete(bis[i], op.Key)
			} else {
				err = s.InstallBatchPut(bis[i], op.Key, op.Val)
			}
			if err != nil {
				desc.Abort()
				for j, sj := range m.shards {
					if bis[j] != nil {
						sj.AbortBatch(bis[j])
					}
				}
				return err
			}
		}
	}
	desc.Commit() // the batch's cross-shard linearization point
	for i, s := range m.shards {
		if bis[i] != nil {
			s.FinalizeBatch(bis[i])
		}
	}
	return nil
}

// MVCCStats aggregates the shards' MVCC counters. OpenSnapshots counts
// per-shard registrations (a cross-shard Snapshot counts once per
// shard divided back out); HorizonLag reports the worst shard.
func (m *Map) MVCCStats() core.MVCCStats {
	var out core.MVCCStats
	for _, s := range m.shards {
		st := s.MVCCStats()
		out.RetainedBytes += st.RetainedBytes
		out.RetainedSpans += st.RetainedSpans
		if st.OpenSnapshots > out.OpenSnapshots {
			out.OpenSnapshots = st.OpenSnapshots
		}
		if st.HorizonLag > out.HorizonLag {
			out.HorizonLag = st.HorizonLag
		}
	}
	return out
}
