package sharded

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"oakmap/internal/core"
)

func TestSnapshotMergedFrozenViewUnderChurn(t *testing.T) {
	m := newTestSharded(t, 4, 64)
	const n = 300
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, v := ik(i), iv(i)
		if err := m.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[string(k)] = string(v)
	}
	sn := m.Snapshot()
	defer sn.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 3))
			for gen := 0; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.IntN(n + 40)
				if rng.IntN(3) == 0 {
					_, _ = m.Remove(ik(i))
				} else {
					_ = m.Put(ik(i), []byte(fmt.Sprintf("churn-%d-%d", seed, gen)))
				}
			}
		}(uint64(w + 1))
	}

	for round := 0; round < 4; round++ {
		desc := round%2 == 1
		got := make(map[string]string, n)
		var prev []byte
		cur := sn.NewCursor(nil, nil, desc)
		for {
			k, v, ok := cur.Next()
			if !ok {
				break
			}
			if prev != nil {
				d := m.cmp(prev, k)
				if desc {
					d = -d
				}
				if d >= 0 {
					t.Fatalf("round %d: merged snapshot keys out of order", round)
				}
			}
			prev = append(prev[:0], k...)
			got[string(k)] = string(v)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: snapshot scan saw %d keys, want %d", round, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("round %d: key %x = %q, want %q", round, k, got[k], v)
			}
		}
		// Point reads agree with the frozen view.
		for i := 0; i < n; i += 29 {
			v, ok := sn.Get(ik(i), nil)
			if !ok || string(v) != want[string(ik(i))] {
				t.Fatalf("round %d: snap Get(%d) = %q, %v", round, i, v, ok)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedBatchAtomicAcrossShards: a snapshot never sees a
// cross-shard batch half-applied, even though the batch's keys land on
// different shards.
func TestShardedBatchAtomicAcrossShards(t *testing.T) {
	m := newTestSharded(t, 4, 64)
	const nk = 12 // spread across all 4 shards
	keys := make([][]byte, nk)
	var ops []core.BatchOp
	for i := range keys {
		keys[i] = ik(i)
		ops = append(ops, core.BatchOp{Key: keys[i], Val: []byte("gen-0")})
	}
	if err := m.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			ops := make([]core.BatchOp, nk)
			for i, k := range keys {
				ops[i] = core.BatchOp{Key: k, Val: []byte(fmt.Sprintf("gen-%d", gen))}
			}
			if err := m.ApplyBatch(ops); err != nil {
				panic(err)
			}
		}
	}()
	for round := 0; round < 150; round++ {
		sn := m.Snapshot()
		var vals []string
		for _, k := range keys {
			v, ok := sn.Get(k, nil)
			if !ok {
				t.Fatalf("round %d: key missing in snapshot", round)
			}
			vals = append(vals, string(v))
		}
		// The merged scan must agree too.
		cur := sn.NewCursor(nil, nil, false)
		count := 0
		for {
			_, v, ok := cur.Next()
			if !ok {
				break
			}
			if string(v) != vals[0] {
				t.Fatalf("round %d: scan saw %q, point reads saw %q", round, v, vals[0])
			}
			count++
		}
		sn.Close()
		if count != nk {
			t.Fatalf("round %d: scan saw %d keys, want %d", round, count, nk)
		}
		for _, v := range vals[1:] {
			if v != vals[0] {
				t.Fatalf("round %d: torn cross-shard batch: %v", round, vals)
			}
		}
	}
	close(stop)
	<-done

	if st := m.MVCCStats(); st.RetainedBytes != 0 || st.OpenSnapshots != 0 {
		t.Fatalf("retained state after snapshots closed: %+v", st)
	}
}

// TestShardedBatchConcurrent hammers concurrent cross-shard batches for
// deadlock freedom and flag cleanup.
func TestShardedBatchConcurrent(t *testing.T) {
	m := newTestSharded(t, 3, 64)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+1, 17))
			for i := 0; i < 80; i++ {
				var ops []core.BatchOp
				for j := 0; j < 1+rng.IntN(6); j++ {
					k := ik(rng.IntN(24))
					if rng.IntN(4) == 0 {
						ops = append(ops, core.BatchOp{Key: k, Delete: true})
					} else {
						ops = append(ops, core.BatchOp{Key: k, Val: []byte(fmt.Sprintf("w%d-%d", w, i))})
					}
				}
				if err := m.ApplyBatch(ops); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 24; i++ {
		if h, ok := m.Get(ik(i)); ok {
			s := m.ShardFor(ik(i))
			if _, err := s.CopyValue(h, nil); err != nil {
				t.Fatalf("key %d unreadable after batches: %v", i, err)
			}
		}
	}
	if st := m.MVCCStats(); st.RetainedBytes != 0 {
		t.Fatalf("retained bytes with no snapshots: %+v", st)
	}
}
