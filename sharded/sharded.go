// Package sharded hash-partitions an Oak map across N independent core
// maps. Each shard is a complete Oak instance — its own arena allocator,
// epoch-reclamation domain, chunk list and skiplist index — so point
// operations on different shards never share a mutable cache line, and a
// rebalance or reclamation stall in one shard cannot block the others.
//
// Point operations (Get / Put / PutIfAbsent / Remove / ComputeIfPresent)
// route to exactly one shard by a stable hash of the serialized key.
// Ordered scans see the union: per-shard cursors are merged through a
// loser-tree k-way merge (merge.go) that yields the globally smallest
// (or largest) head, so Ascend/Descend remain globally sorted and
// duplicate-free even though keys are scattered by hash. Because every
// per-shard step pins only that shard's epoch domain for its own
// duration, a long merged scan never holds any pin while parked —
// reclamation limbo stays bounded per shard, not per scan.
//
// The package works below (de)serialization, like internal/core; the
// generic facade in package oakmap selects it via Options.Shards.
package sharded

import (
	"bytes"
	"sync"

	"oakmap/internal/core"
	"oakmap/internal/faultpoint"
)

// Fault-injection points on the sharding layer (no-ops unless armed).
var (
	// FpRoute is hit on every key-routing decision, before the shard is
	// chosen: a pausing hook widens the window between routing and the
	// routed operation so cross-shard races (e.g. a scan overtaking a
	// writer mid-route) get exercised.
	FpRoute = faultpoint.New("shard/route")
	// FpScanRotate is hit each time a merged scan's winner moves to a
	// different shard — the moment the scan's attention (and pin
	// cycling) rotates across shard boundaries, where skipped or
	// duplicated keys would appear if resume positions were wrong.
	FpScanRotate = faultpoint.New("shard/scan-rotate")
)

// Map is a hash-sharded collection of core Oak maps.
type Map struct {
	shards []*core.Map
	cmp    core.Comparator

	// verMu serializes the clock-ratchet phase of cross-shard batches
	// (PrepareBatch on every involved shard) against the begin phase of
	// cross-shard snapshots (BeginSnapshot on every shard). With both
	// phases atomic relative to each other, any batch/snapshot pair is
	// ordered the same way on every shard — a snapshot can never see a
	// batch's writes on one shard but not another (a torn cross-shard
	// batch). Only these short ratchet phases are serialized; installs,
	// commits, and scans all run outside the lock.
	//
	// Lock-order contract, verified by oak-vet/lockorder: the ratchet
	// lock is taken before any shard-local MVCC lock (BeginSnapshot's
	// mvccState.mu, PrepareBatch's mvccState.pendMu), never inside one.
	//
	//oak:lock-order sharded.Map.verMu core.mvccState.mu
	//oak:lock-order sharded.Map.verMu core.mvccState.pendMu
	verMu sync.Mutex
}

// New builds n shards from opts (n < 1 is treated as 1). Each shard gets
// its own core.New call — and therefore its own allocator and epoch
// domain — from the same options; a shared Options.Pool is safe (shards
// draw blocks from it independently) and keeps the off-heap budget
// global. The comparator must totally order keys across shards since
// merged scans interleave them.
func New(n int, opts *core.Options) *Map {
	if n < 1 {
		n = 1
	}
	cmp := core.Comparator(bytes.Compare)
	if opts != nil && opts.Comparator != nil {
		cmp = opts.Comparator
	}
	m := &Map{shards: make([]*core.Map, n), cmp: cmp}
	for i := range m.shards {
		m.shards[i] = core.New(opts)
	}
	return m
}

// routeHash is FNV-1a 64 with a finalizing fold so the low bits used by
// the modulus mix in the high ones. It is deliberately unseeded: routing
// must be stable across processes and runs (the fuzz corpus and stress
// validators depend on a key always landing on the same shard for a
// given shard count).
func routeHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 32
	return h
}

// ShardIndex returns the index of the shard owning key.
func (m *Map) ShardIndex(key []byte) int {
	FpRoute.Fire()
	return int(routeHash(key) % uint64(len(m.shards)))
}

// ShardFor returns the shard owning key. Callers that perform several
// dependent steps on one key (e.g. a compute-then-insert loop) should
// resolve the shard once and reuse it.
func (m *Map) ShardFor(key []byte) *core.Map {
	return m.shards[m.ShardIndex(key)]
}

// Shards exposes the underlying core maps (index-stable), for stats
// rollup, quiescing, and per-shard assertions in tests. Callers must not
// close individual shards.
func (m *Map) Shards() []*core.Map { return m.shards }

// NumShards returns the shard count.
func (m *Map) NumShards() int { return len(m.shards) }

// Point operations: one hash, one shard, then exactly the core protocol.

// Get returns the live value handle for key, if present. The handle is
// only meaningful against the owning shard — pair it with ShardFor(key)
// (or use the Entry-returning navigation queries).
func (m *Map) Get(key []byte) (core.ValueHandle, bool) {
	return m.ShardFor(key).Get(key)
}

// Put unconditionally associates key with val.
func (m *Map) Put(key, val []byte) error {
	return m.ShardFor(key).Put(key, val)
}

// PutIfAbsent inserts iff the key is absent; reports whether it inserted.
func (m *Map) PutIfAbsent(key, val []byte) (bool, error) {
	return m.ShardFor(key).PutIfAbsent(key, val)
}

// Remove deletes the mapping; reports whether the key was present.
func (m *Map) Remove(key []byte) (bool, error) {
	return m.ShardFor(key).Remove(key)
}

// ComputeIfPresent runs f atomically on the present value.
func (m *Map) ComputeIfPresent(key []byte, f func(*core.WBuffer) error) (bool, error) {
	return m.ShardFor(key).ComputeIfPresent(key, f)
}

// PutIfAbsentComputeIfPresent inserts val or atomically updates with f.
func (m *Map) PutIfAbsentComputeIfPresent(key, val []byte, f func(*core.WBuffer) error) error {
	return m.ShardFor(key).PutIfAbsentComputeIfPresent(key, val, f)
}

// Len sums the shard sizes. Like core.Map.Len it is a moment-in-time
// figure under concurrency — each shard's count is read independently.
func (m *Map) Len() int {
	n := 0
	for _, s := range m.shards {
		n += s.Len()
	}
	return n
}

// Close closes every shard.
func (m *Map) Close() {
	for _, s := range m.shards {
		s.Close()
	}
}

// Quiesce drives every shard's epoch domain until its limbo lists drain
// (or a shard reports it cannot). Reports whether all shards drained.
func (m *Map) Quiesce() bool {
	ok := true
	for _, s := range m.shards {
		if !s.QuiesceReclaim() {
			ok = false
		}
	}
	return ok
}

// Entry is a cross-shard navigation result: the owning shard, an owned
// on-heap copy of the key, and the entry's references into that shard.
// Key is safe to hold; KeyRef/Handle follow the usual core validity
// rules against Src.
type Entry struct {
	Src    *core.Map
	Key    []byte
	KeyRef uint64
	Handle core.ValueHandle
}

// navRetries bounds the re-query loop when a candidate entry is removed
// between a shard's navigation query and the key copy-out. Each retry
// re-runs the query, so the loop only repeats while that specific shard
// churns at its boundary; after the bound the shard is treated as empty
// for this query (a legal linearization: the observed entries kept
// disappearing).
const navRetries = 8

// reduceNav runs q against every shard, copies each candidate key out
// under validation, and keeps the minimum (or maximum) by the map's
// comparator. Ties are impossible: shards partition the key space.
func (m *Map) reduceNav(q func(*core.Map) (uint64, core.ValueHandle, bool), wantMax bool) (Entry, bool) {
	var best Entry
	found := false
	for _, s := range m.shards {
		for attempt := 0; attempt < navRetries; attempt++ {
			kr, h, ok := q(s)
			if !ok {
				break
			}
			key, err := s.CopyKey(kr, h, nil)
			if err != nil {
				continue // removed between query and copy: re-query
			}
			if !found || (wantMax && m.cmp(key, best.Key) > 0) ||
				(!wantMax && m.cmp(key, best.Key) < 0) {
				best = Entry{Src: s, Key: key, KeyRef: kr, Handle: h}
			}
			found = true
			break
		}
	}
	return best, found
}

// First returns the entry with the globally smallest key.
func (m *Map) First() (Entry, bool) {
	return m.reduceNav(func(s *core.Map) (uint64, core.ValueHandle, bool) {
		return s.First()
	}, false)
}

// Last returns the entry with the globally largest key.
func (m *Map) Last() (Entry, bool) {
	return m.reduceNav(func(s *core.Map) (uint64, core.ValueHandle, bool) {
		return s.Last()
	}, true)
}

// Floor returns the entry with the largest key ≤ k.
func (m *Map) Floor(k []byte) (Entry, bool) {
	return m.reduceNav(func(s *core.Map) (uint64, core.ValueHandle, bool) {
		return s.Floor(k)
	}, true)
}

// Ceiling returns the entry with the smallest key ≥ k.
func (m *Map) Ceiling(k []byte) (Entry, bool) {
	return m.reduceNav(func(s *core.Map) (uint64, core.ValueHandle, bool) {
		return s.Ceiling(k)
	}, false)
}

// Lower returns the entry with the largest key < k.
func (m *Map) Lower(k []byte) (Entry, bool) {
	return m.reduceNav(func(s *core.Map) (uint64, core.ValueHandle, bool) {
		return s.Lower(k)
	}, true)
}

// Higher returns the entry with the smallest key > k.
func (m *Map) Higher(k []byte) (Entry, bool) {
	return m.reduceNav(func(s *core.Map) (uint64, core.ValueHandle, bool) {
		return s.Higher(k)
	}, false)
}
