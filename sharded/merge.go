package sharded

import (
	"oakmap/internal/core"
)

// This file merges the per-shard ordered streams back into one globally
// sorted scan. The engine is a loser tree — the classic k-way merge
// structure: k leaves (one per shard cursor) and k internal nodes, where
// node[0] holds the overall winner and every other node holds the loser
// of the match played at it. Popping the winner replays exactly one
// root-to-leaf path (⌈log₂ k⌉ comparisons), not k-1 as a naive
// min-of-heads rescan would.
//
// Key lifetime is the delicate part. core.Cursor.Next pins its shard's
// epoch only for the call, and the key bytes it exposes via Cursor.Key
// are the cursor's own on-heap resume copy, reused by that cursor's next
// advance. The tree therefore compares leaf heads without any pin, and
// the merged cursor advances lazily: the winning leaf is not advanced
// until the *following* Next call, so the key slice handed to the caller
// stays valid for the full step. Callers that retain a key must copy it
// (the facade's iterators already do).

// EntryFunc visits one merged entry. key is an owned-by-the-iterator
// copy valid for the duration of the call; keyRef and h are references
// into src and follow the usual core validity rules (h is live at yield
// time; re-validate under src's pin for later use).
type EntryFunc func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool

// leaf is one shard's stream head. The default stream is a core.Cursor
// over the live map; snapshot scans plug in their own step function
// (a core.SnapCursor yields materialized key/value pairs instead of
// handles), reusing the tree unchanged — it only reads key/ok and calls
// advance.
type leaf struct {
	src    *core.Map
	cur    *core.Cursor
	key    []byte // current head key: alias of cur.Key(), nil iff !ok
	val    []byte // snapshot streams: the head's value bytes
	keyRef uint64
	h      core.ValueHandle
	ok     bool
	step   func(l *leaf) // non-nil overrides the core.Cursor advance
}

func (l *leaf) advance() {
	if l.step != nil {
		l.step(l)
		return
	}
	l.keyRef, l.h, l.ok = l.cur.Next()
	if l.ok {
		l.key = l.cur.Key()
	} else {
		l.key = nil
	}
}

// loserTree is the k-way merge state. node has one slot per leaf;
// node[0] is the winner, node[1:] hold match losers. Exhausted leaves
// lose every match, so they sink and the tree drains cleanly without
// sentinel keys.
type loserTree struct {
	cmp    core.Comparator
	desc   bool
	leaves []*leaf
	node   []int
}

func newLoserTree(cmp core.Comparator, desc bool, leaves []*leaf) *loserTree {
	t := &loserTree{cmp: cmp, desc: desc, leaves: leaves, node: make([]int, len(leaves))}
	t.init()
	return t
}

// beats reports whether leaf a wins the match against leaf b: live beats
// exhausted, smaller key beats larger (reversed when descending), and
// ties — impossible between shards of one map, but allowed by the type —
// go to the lower index, keeping the merge stable.
func (t *loserTree) beats(a, b int) bool {
	la, lb := t.leaves[a], t.leaves[b]
	if !la.ok {
		return false
	}
	if !lb.ok {
		return true
	}
	c := t.cmp(la.key, lb.key)
	if t.desc {
		c = -c
	}
	if c != 0 {
		return c < 0
	}
	return a < b
}

// init builds the tree by replaying each leaf up its path in increasing
// leaf order. A leaf that reaches an empty node parks there and stops;
// matches at occupied nodes leave the loser behind and send the winner
// up. The last contender on each path that climbs past node 1 becomes
// the champion in node[0].
func (t *loserTree) init() {
	k := len(t.leaves)
	for i := range t.node {
		t.node[i] = -1
	}
	for s := 0; s < k; s++ {
		w := s
		parked := false
		for i := (s + k) / 2; i >= 1; i /= 2 {
			if t.node[i] == -1 {
				t.node[i] = w
				parked = true
				break
			}
			if t.beats(t.node[i], w) {
				w, t.node[i] = t.node[i], w
			}
		}
		if !parked {
			t.node[0] = w
		}
	}
}

// winner returns the current winning leaf, or nil when every leaf is
// exhausted.
func (t *loserTree) winner() *leaf {
	l := t.leaves[t.node[0]]
	if !l.ok {
		return nil
	}
	return l
}

// pop advances the winning leaf and replays its path to find the next
// winner.
func (t *loserTree) pop() {
	k := len(t.leaves)
	w := t.node[0]
	t.leaves[w].advance()
	for i := (w + k) / 2; i >= 1; i /= 2 {
		if t.beats(t.node[i], w) {
			w, t.node[i] = t.node[i], w
		}
	}
	t.node[0] = w
}

// Cursor is a pull-based merged scan across all shards — the sharded
// analogue of core.Cursor, with the same non-atomic guarantees extended
// globally: keys present in the map for the cursor's whole lifetime are
// yielded exactly once, in global order. Between Next calls no shard's
// epoch is pinned, so a parked merged cursor stalls no reclamation
// anywhere.
type Cursor struct {
	t         *loserTree
	started   bool
	lastShard int
	shardOf   map[*core.Map]int
}

// NewCursor opens a merged cursor over lo ≤ key < hi (nil bounds open),
// descending when desc is set.
func (m *Map) NewCursor(lo, hi []byte, desc bool) *Cursor {
	leaves := make([]*leaf, len(m.shards))
	shardOf := make(map[*core.Map]int, len(m.shards))
	for i, s := range m.shards {
		l := &leaf{src: s, cur: s.NewCursor(lo, hi, desc)}
		l.advance() // prime the head before building the tree
		leaves[i] = l
		shardOf[s] = i
	}
	return &Cursor{
		t:         newLoserTree(m.cmp, desc, leaves),
		lastShard: -1,
		shardOf:   shardOf,
	}
}

// Next returns the next merged entry, or ok=false when every shard is
// exhausted. key is valid until the following Next call; keyRef/h are
// references into src (h live at yield time).
func (c *Cursor) Next() (src *core.Map, key []byte, keyRef uint64, h core.ValueHandle, ok bool) {
	for {
		if c.started {
			c.t.pop()
		}
		c.started = true
		w := c.t.winner()
		if w == nil {
			return nil, nil, 0, 0, false
		}
		if i := c.shardOf[w.src]; i != c.lastShard {
			// The scan's attention rotated to another shard: the hot spot
			// for resume/skip bugs, so give chaos hooks a window here.
			FpScanRotate.Fire()
			c.lastShard = i
		}
		if w.src.IsDeleted(w.h) {
			// Deleted since the leaf advanced (the merge holds entries one
			// step before yielding them): skip, as a pinned scan would.
			continue
		}
		return w.src, w.key, w.keyRef, w.h, true
	}
}

// Ascend streams the merged entries in ascending order over
// lo ≤ key < hi, stopping early if yield returns false. With one shard
// it degenerates to the core scan — same pin discipline, zero merge
// overhead, and arena-backed key slices (valid for the callback, like
// every core scan).
func (m *Map) Ascend(lo, hi []byte, yield EntryFunc) {
	m.scan(lo, hi, false, yield)
}

// Descend streams the merged entries in descending order (first key < hi
// down to lo), stopping early if yield returns false.
func (m *Map) Descend(lo, hi []byte, yield EntryFunc) {
	m.scan(lo, hi, true, yield)
}

func (m *Map) scan(lo, hi []byte, desc bool, yield EntryFunc) {
	if len(m.shards) == 1 {
		s := m.shards[0]
		coreYield := func(kr uint64, h core.ValueHandle) bool {
			return yield(s, s.KeyBytes(kr), kr, h)
		}
		if desc {
			s.Descend(lo, hi, coreYield)
		} else {
			s.Ascend(lo, hi, coreYield)
		}
		return
	}
	cur := m.NewCursor(lo, hi, desc)
	for {
		src, key, kr, h, ok := cur.Next()
		if !ok {
			return
		}
		if !yield(src, key, kr, h) {
			return
		}
	}
}
