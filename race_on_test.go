//go:build race

package oakmap_test

// raceEnabled mirrors the race detector's presence so timing-sensitive
// gates (TestTelemetryOverheadGate) can skip themselves: instrumented
// builds inflate both sides of a ratio by ~10x and drown the signal.
const raceEnabled = true
