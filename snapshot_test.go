package oakmap

import (
	"fmt"
	"sync"
	"testing"
)

func snapTestMap(t *testing.T, shards int) *Map[uint64, string] {
	t.Helper()
	m := New[uint64, string](Uint64Serializer{}, StringSerializer{},
		&Options{ChunkCapacity: 64, Shards: shards})
	t.Cleanup(m.Close)
	return m
}

// runPlainAndSharded exercises a facade behavior against both backends.
func runPlainAndSharded(t *testing.T, f func(t *testing.T, m *Map[uint64, string])) {
	t.Run("plain", func(t *testing.T) { f(t, snapTestMap(t, 0)) })
	t.Run("sharded", func(t *testing.T) { f(t, snapTestMap(t, 4)) })
}

func TestSnapshotFacadeFrozenView(t *testing.T) {
	runPlainAndSharded(t, func(t *testing.T, m *Map[uint64, string]) {
		const n = 150
		want := make(map[uint64]string, n)
		for i := uint64(0); i < n; i++ {
			v := fmt.Sprintf("v%d", i)
			if _, _, err := m.Put(i, v); err != nil {
				t.Fatal(err)
			}
			want[i] = v
		}
		sn := m.Snapshot()
		defer sn.Close()

		// Mutate after the snapshot: overwrites, deletes, inserts.
		for i := uint64(0); i < n; i += 2 {
			if _, _, err := m.Put(i, "mutated"); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(1); i < n; i += 4 {
			if _, _, err := m.Remove(i); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := m.Put(n+5, "new"); err != nil {
			t.Fatal(err)
		}

		for i := uint64(0); i < n; i++ {
			v, ok := sn.Get(i)
			if !ok || v != want[i] {
				t.Fatalf("snap Get(%d) = %q, %v; want %q", i, v, ok, want[i])
			}
		}
		if _, ok := sn.Get(n + 5); ok {
			t.Fatal("snapshot sees a post-snapshot insert")
		}

		// Ascend covers exactly the frozen content, in order.
		got := make(map[uint64]string, n)
		var prev uint64
		first := true
		sn.Ascend(nil, nil, func(k uint64, v string) bool {
			if !first && k <= prev {
				t.Fatalf("ascend out of order: %d after %d", k, prev)
			}
			first, prev = false, k
			got[k] = v
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("ascend saw %d entries, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("ascend key %d = %q, want %q", k, got[k], v)
			}
		}

		// Iterator agrees with Descend ordering.
		it := sn.Iterator(nil, nil, true)
		count := 0
		last := uint64(0)
		for {
			k, v, ok := it.Next()
			if !ok {
				break
			}
			if count > 0 && k >= last {
				t.Fatalf("descending iterator out of order: %d after %d", k, last)
			}
			last = k
			if want[k] != v {
				t.Fatalf("iterator key %d = %q, want %q", k, v, want[k])
			}
			count++
		}
		if count != len(want) {
			t.Fatalf("iterator saw %d entries, want %d", count, len(want))
		}

		// The live map reflects the churn, not the frozen view.
		if v, ok := m.Get(0); !ok || v != "mutated" {
			t.Fatalf("live Get(0) = %q, %v", v, ok)
		}
	})
}

func TestSnapshotFacadeRetainedDrains(t *testing.T) {
	runPlainAndSharded(t, func(t *testing.T, m *Map[uint64, string]) {
		for i := uint64(0); i < 100; i++ {
			if _, _, err := m.Put(i, "a"); err != nil {
				t.Fatal(err)
			}
		}
		sn := m.Snapshot()
		for i := uint64(0); i < 100; i++ {
			if _, _, err := m.Put(i, "bbbb"); err != nil {
				t.Fatal(err)
			}
		}
		if st := m.Stats(); st.OpenSnapshots != 1 || st.RetainedBytes == 0 {
			t.Fatalf("with open snapshot: %+v", st)
		}
		sn.Close()
		sn.Close() // idempotent
		if st := m.Stats(); st.OpenSnapshots != 0 || st.RetainedBytes != 0 || st.RetainedSpans != 0 {
			t.Fatalf("after close: OpenSnapshots=%d RetainedBytes=%d RetainedSpans=%d",
				st.OpenSnapshots, st.RetainedBytes, st.RetainedSpans)
		}
	})
}

func TestApplyBatchFacadeAtomic(t *testing.T) {
	runPlainAndSharded(t, func(t *testing.T, m *Map[uint64, string]) {
		keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
		ops := make([]Op[uint64, string], len(keys))
		for i, k := range keys {
			ops[i] = Op[uint64, string]{Key: k, Value: "gen-0"}
		}
		if err := m.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gen := 1; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				ops := make([]Op[uint64, string], len(keys))
				for i, k := range keys {
					ops[i] = Op[uint64, string]{Key: k, Value: fmt.Sprintf("gen-%d", gen)}
				}
				if err := m.ApplyBatch(ops); err != nil {
					panic(err)
				}
			}
		}()
		for round := 0; round < 80; round++ {
			sn := m.Snapshot()
			var ref string
			for i, k := range keys {
				v, ok := sn.Get(k)
				if !ok {
					t.Fatalf("round %d: key %d missing", round, k)
				}
				if i == 0 {
					ref = v
				} else if v != ref {
					t.Fatalf("round %d: torn batch: %q vs %q", round, v, ref)
				}
			}
			sn.Close()
		}
		close(stop)
		wg.Wait()

		// Batch with deletes and last-wins duplicates.
		if err := m.ApplyBatch([]Op[uint64, string]{
			{Key: 1, Delete: true},
			{Key: 2, Value: "first"},
			{Key: 2, Value: "second"},
			{Key: 99, Delete: true}, // absent: no-op
		}); err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Get(1); ok {
			t.Fatal("key 1 survived batch delete")
		}
		if v, ok := m.Get(2); !ok || v != "second" {
			t.Fatalf("dup key: got %q, %v; want last-wins", v, ok)
		}
	})
}

func TestSnapshotFacadeRaw(t *testing.T) {
	m := snapTestMap(t, 0)
	for i := uint64(0); i < 20; i++ {
		if _, _, err := m.Put(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sn := m.Snapshot()
	defer sn.Close()
	var ser Uint64Serializer
	kb := make([]byte, 8)
	ser.Serialize(7, kb)
	if v, ok := sn.GetRaw(kb, nil); !ok || string(v) != "v7" {
		t.Fatalf("GetRaw = %q, %v", v, ok)
	}
	n := 0
	sn.AscendRaw(nil, nil, func(key, val []byte) bool {
		n++
		return true
	})
	if n != 20 {
		t.Fatalf("AscendRaw saw %d entries, want 20", n)
	}
}
